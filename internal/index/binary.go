package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dewey"
	"repro/internal/postings"
)

// Binary index format ("GKSI", version 2): a compact, self-describing
// serialization that stores posting lists delta-varint compressed
// (internal/postings) and Dewey IDs with the varint codec
// (internal/dewey). It is substantially smaller and faster to decode than
// the gob format (format v1), which is retained for compatibility; Load
// and LoadFile auto-detect the format from the leading magic bytes.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GKSI" | version
//	labels:   count, then len+bytes each
//	docs:     count, then len+bytes each
//	nodes:    count, then per node:
//	            dewey(binary codec) label cat(byte) childCount subtree
//	            parent+1 hasValue(byte) [valueLen valueBytes]
//	postings: count, then per keyword:
//	            keyLen keyBytes n deltaVarints...
//	stats:    fixed sequence of varints
const binaryMagic = "GKSI"

// binaryVersion is the flat-table encoding; binaryVersionPacked marks a
// stream whose node section is the DAG-compressed layout of packed.go
// (same labels/docs/postings/stats framing, packed node arrays in place of
// the per-node records). SaveBinary picks the version from the index's
// representation, so a packed index round-trips without materializing a
// flat table and a flat one stays byte-identical to format v2.
const (
	binaryVersion       = 2
	binaryVersionPacked = 3
)

// binWriter bundles the buffered writer and varint scratch the binary
// encoders share.
type binWriter struct {
	bw      *bufio.Writer
	scratch []byte
}

func (w *binWriter) uvarint(v uint64) {
	w.scratch = binary.AppendUvarint(w.scratch[:0], v)
	w.bw.Write(w.scratch)
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.bw.WriteString(s)
}

// writeMeta writes the labels/docs/nodes sections in the v2 encoding —
// the part of the format shared between SaveBinary and the GKS4 segment
// meta section.
func (w *binWriter) writeMeta(ix *Index) {
	w.uvarint(uint64(len(ix.Labels)))
	for _, l := range ix.Labels {
		w.str(l)
	}
	w.uvarint(uint64(len(ix.DocNames)))
	for _, d := range ix.DocNames {
		w.str(d)
	}

	w.uvarint(uint64(len(ix.Nodes)))
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		w.scratch = n.ID.AppendBinary(w.scratch[:0])
		w.bw.Write(w.scratch)
		w.uvarint(uint64(n.Label))
		w.bw.WriteByte(byte(n.Cat))
		w.uvarint(uint64(n.ChildCount))
		w.uvarint(uint64(n.Subtree))
		w.uvarint(uint64(n.Parent + 1))
		if n.HasValue {
			w.bw.WriteByte(1)
			w.str(n.Value)
		} else {
			w.bw.WriteByte(0)
		}
	}
}

// writeMetaPacked writes the labels/docs sections followed by the packed
// node arrays. Negative-capable fields are stored +1 so plain uvarints
// suffice. The per-ordinal dispatch array is NOT written: instance ranges
// plus the rule that spine slots are assigned in ascending ordinal order
// (which is how packNodes emits them) reconstruct it exactly.
func (w *binWriter) writeMetaPacked(ix *Index) {
	p := ix.packed
	w.uvarint(uint64(len(ix.Labels)))
	for _, l := range ix.Labels {
		w.str(l)
	}
	w.uvarint(uint64(len(ix.DocNames)))
	for _, d := range ix.DocNames {
		w.str(d)
	}

	w.uvarint(uint64(len(p.ordInst)))

	w.uvarint(uint64(len(p.spLabel)))
	for i := range p.spLabel {
		w.uvarint(uint64(p.spLabel[i]))
		w.bw.WriteByte(p.spCat[i])
		w.uvarint(uint64(p.spChild[i]))
		w.uvarint(uint64(p.spSubtree[i]))
		w.uvarint(uint64(p.spParent[i] + 1))
		w.uvarint(uint64(uint32(p.spLast[i])))
		w.uvarint(uint64(p.spDepth[i]))
		w.uvarint(uint64(p.spVal[i] + 1))
	}

	w.uvarint(uint64(len(p.inStart)))
	for i := range p.inStart {
		w.uvarint(uint64(p.inStart[i]))
		w.uvarint(uint64(p.inShape[i]))
		w.uvarint(uint64(p.inParent[i] + 1))
		w.uvarint(uint64(uint32(p.inLast[i])))
		w.uvarint(uint64(p.inDepth[i]))
	}

	w.uvarint(uint64(len(p.shOff) - 1))
	for s := 0; s+1 < len(p.shOff); s++ {
		base, end := p.shOff[s], p.shOff[s+1]
		w.uvarint(uint64(end - base))
		for k := base; k < end; k++ {
			w.uvarint(uint64(p.shLabel[k]))
			w.bw.WriteByte(p.shCat[k])
			w.uvarint(uint64(p.shChild[k]))
			w.uvarint(uint64(p.shSubtree[k]))
			w.uvarint(uint64(p.shParent[k] + 1))
			w.uvarint(uint64(uint32(p.shLast[k])))
			w.uvarint(uint64(p.shDepth[k]))
			w.uvarint(uint64(p.shVal[k] + 1))
		}
	}

	w.uvarint(uint64(len(p.valOff) - 1))
	w.uvarint(uint64(len(p.valArena)))
	w.bw.Write(p.valArena)
	for v := 0; v+1 < len(p.valOff); v++ {
		w.uvarint(uint64(p.valOff[v+1] - p.valOff[v]))
	}

	w.uvarint(uint64(len(p.docStart)))
	for k := range p.docStart {
		w.uvarint(uint64(p.docStart[k]))
		w.uvarint(uint64(uint32(p.docNum[k])))
	}
}

// metaPackedSentinel distinguishes a packed meta section from the flat v2
// layout: a flat section starts with the label count, which is at least 1
// on any buildable index, so a leading 0 byte can only mean "packed
// follows" (then a version varint for future evolution).
const metaPackedVersion = 1

// EncodeMeta writes the labels, document names and node table without
// magic framing. A flat index uses the v2 encoding unchanged; a packed
// index writes a 0 sentinel, a packed-meta version and the packed arrays.
// This is the GKS4 segment meta section (internal/segment); DecodeMeta is
// its inverse and auto-detects the variant. A tombstoned index must be
// compacted by the caller first.
func EncodeMeta(w io.Writer, ix *Index) error {
	bw := &binWriter{bw: bufio.NewWriter(w)}
	if ix.packed != nil {
		bw.uvarint(0)
		bw.uvarint(metaPackedVersion)
		bw.writeMetaPacked(ix)
	} else {
		bw.writeMeta(ix)
	}
	return bw.bw.Flush()
}

// SaveBinary writes the index in the compact binary format. A tombstoned
// index is compacted first — the on-disk formats have no notion of a
// delete mask — and a lazily-backed index streams its lists from the
// source one at a time, so serializing never materializes the postings.
func (ix *Index) SaveBinary(w io.Writer) error {
	ix = ix.Compacted()
	bw := &binWriter{bw: bufio.NewWriter(w)}

	bw.bw.WriteString(binaryMagic)
	if ix.packed != nil {
		bw.uvarint(binaryVersionPacked)
		bw.writeMetaPacked(ix)
	} else {
		bw.uvarint(binaryVersion)
		bw.writeMeta(ix)
	}

	// Keywords are written sorted so the format is deterministic. A
	// separate buffer keeps list encoding off bw.scratch, which the
	// uvarint helper reuses.
	var encBuf []byte
	bw.uvarint(uint64(ix.keywordCount()))
	err := ix.ForEachKeywordSorted(func(k string, list []int32) error {
		bw.str(k)
		bw.uvarint(uint64(len(list)))
		encBuf = postings.Encode(encBuf[:0], list)
		bw.bw.Write(encBuf)
		return nil
	})
	if err != nil {
		return err
	}

	for _, v := range ix.Stats.fields() {
		bw.uvarint(uint64(v))
	}
	return bw.bw.Flush()
}

// fields flattens Stats for serialization; order is part of the format.
func (s *Stats) fields() []int {
	return []int{
		s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth,
	}
}

func (s *Stats) setFields(v []int) {
	s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth =
		v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9]
}

const statsFieldCount = 10

// LoadBinary reads an index written by SaveBinary. The magic bytes must
// already be verified by the caller (Load does this) or present in r.
func LoadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("binary load: magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, corruptf("binary load: bad magic %q", magic)
	}
	return loadBinaryAfterMagic(br, -1)
}

// preallocCap bounds an upfront slice allocation for a decoded count when
// the input size is unknown: the slice starts at most this many elements
// and grows by append, so a lying count costs a bounded allocation before
// the stream runs dry and decoding fails.
const preallocCap = 1 << 16

// boundedCount validates a decoded element count. Every element occupies at
// least minBytes bytes of input, so when the input size is known a count
// exceeding size/minBytes proves corruption before anything is allocated;
// absCap is the structural ceiling (e.g. node ordinals are int32).
func boundedCount(what string, n uint64, minBytes, size int64, absCap uint64) (int, error) {
	if n > absCap {
		return 0, corruptf("binary load: implausible %s %d", what, n)
	}
	if size >= 0 && n > uint64(size)/uint64(minBytes) {
		return 0, corruptf("binary load: %s %d exceeds what %d input bytes can hold", what, n, size)
	}
	return int(n), nil
}

// loadBinaryAfterMagic decodes a v2 stream whose magic has been consumed.
// size bounds the bytes plausibly remaining in br (< 0 when unknown); all
// pre-allocations are capped against it so corrupt counts fail with
// ErrCorrupt instead of demanding multi-GB allocations.
func loadBinaryAfterMagic(br *bufio.Reader, size int64) (*Index, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) (*Index, error) {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, corruptf("binary load: %s: %v", what, err)
	}

	version, err := readUvarint()
	if err != nil {
		return fail("version", err)
	}
	ix := &Index{Postings: make(map[string][]int32), labelIDs: make(map[string]int32)}
	switch version {
	case binaryVersion:
		if err := readMetaInto(br, size, ix); err != nil {
			return nil, err
		}
	case binaryVersionPacked:
		if err := readMetaPackedInto(br, size, ix); err != nil {
			return nil, err
		}
	default:
		return nil, corruptf("binary load: unsupported version %d", version)
	}

	nKeys, err := readUvarint()
	if err != nil {
		return fail("keyword count", err)
	}
	if _, err := boundedCount("keyword count", nKeys, 1, size, 1<<31); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nKeys; i++ {
		key, err := readString()
		if err != nil {
			return fail("keyword", err)
		}
		rawN, err := readUvarint()
		if err != nil {
			return fail("posting count", err)
		}
		n, err := boundedCount("posting count", rawN, 1, size, 1<<31)
		if err != nil {
			return nil, err
		}
		list := make([]int32, 0, min(n, preallocCap))
		prev := int32(-1)
		for j := 0; j < n; j++ {
			d, err := readUvarint()
			if err != nil {
				return fail("posting delta", err)
			}
			// A zero delta would decode a duplicate ordinal — lists are
			// strictly increasing by invariant, and the save-path codec
			// enforces it, so accepting one here would plant a panic in a
			// later save.
			if d == 0 {
				return nil, corruptf("binary load: keyword %q: zero posting delta", key)
			}
			prev += int32(d)
			list = append(list, prev)
		}
		ix.Postings[key] = list
	}

	vals := make([]int, statsFieldCount)
	for i := range vals {
		v, err := readUvarint()
		if err != nil {
			return fail("stats", err)
		}
		vals[i] = int(v)
	}
	ix.Stats.setFields(vals)
	return ix, nil
}

// DecodeMeta reads the labels/docs/nodes sections written by EncodeMeta
// into a fresh Index with no posting lists and zero statistics — the
// skeleton internal/segment hands to NewLazy. The flat (v2) and packed
// variants are auto-detected from the leading sentinel byte. size bounds
// allocations as in Load; damaged input fails with ErrCorrupt.
func DecodeMeta(r io.Reader, size int64) (*Index, error) {
	br := bufio.NewReader(r)
	ix := &Index{labelIDs: make(map[string]int32)}
	lead, err := br.Peek(1)
	if err != nil {
		return nil, corruptf("binary load: meta lead: %v", err)
	}
	if lead[0] == 0 {
		br.Discard(1)
		ver, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, corruptf("binary load: packed meta version: %v", err)
		}
		if ver != metaPackedVersion {
			return nil, corruptf("binary load: unsupported packed meta version %d", ver)
		}
		if err := readMetaPackedInto(br, size, ix); err != nil {
			return nil, err
		}
		return ix, nil
	}
	if err := readMetaInto(br, size, ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// readMetaInto decodes the labels/docs/nodes sections (the writeMeta
// layout) into ix. size bounds pre-allocations as in loadBinaryAfterMagic.
func readMetaInto(br *bufio.Reader, size int64, ix *Index) error {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) error {
		if errors.Is(err, ErrCorrupt) {
			return err
		}
		return corruptf("binary load: %s: %v", what, err)
	}

	nLabels, err := readUvarint()
	if err != nil {
		return fail("label count", err)
	}
	if _, err := boundedCount("label count", nLabels, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return fail("label", err)
		}
		ix.labelIDs[l] = int32(len(ix.Labels))
		ix.Labels = append(ix.Labels, l)
	}
	nDocs, err := readUvarint()
	if err != nil {
		return fail("doc count", err)
	}
	if _, err := boundedCount("doc count", nDocs, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nDocs; i++ {
		d, err := readString()
		if err != nil {
			return fail("doc name", err)
		}
		ix.DocNames = append(ix.DocNames, d)
	}

	rawNodes, err := readUvarint()
	if err != nil {
		return fail("node count", err)
	}
	// A serialized node is at least 8 bytes (2 dewey varints + label +
	// category + child count + subtree + parent + has-value flag).
	nNodes, err := boundedCount("node count", rawNodes, 8, size, 1<<31)
	if err != nil {
		return err
	}
	ix.Nodes = make([]NodeInfo, 0, min(nNodes, preallocCap))
	for i := 0; i < nNodes; i++ {
		var n NodeInfo
		id, err := readDewey(br)
		if err != nil {
			return fail("dewey", err)
		}
		n.ID = id
		label, err := readUvarint()
		if err != nil {
			return fail("node label", err)
		}
		n.Label = int32(label)
		cat, err := br.ReadByte()
		if err != nil {
			return fail("node category", err)
		}
		n.Cat = Category(cat)
		cc, err := readUvarint()
		if err != nil {
			return fail("child count", err)
		}
		n.ChildCount = int32(cc)
		st, err := readUvarint()
		if err != nil {
			return fail("subtree", err)
		}
		n.Subtree = int32(st)
		parent, err := readUvarint()
		if err != nil {
			return fail("parent", err)
		}
		n.Parent = int32(parent) - 1
		hv, err := br.ReadByte()
		if err != nil {
			return fail("has-value flag", err)
		}
		if hv == 1 {
			n.HasValue = true
			if n.Value, err = readString(); err != nil {
				return fail("value", err)
			}
		}
		ix.Nodes = append(ix.Nodes, n)
	}
	return nil
}

// readMetaPackedInto decodes the writeMetaPacked layout into ix.packed.
// The per-ordinal dispatch array is reconstructed from the instance ranges
// and the ascending-ordinal spine rule, and the result must pass the full
// packed validation before it is accepted — the O(1) accessors index
// blindly, so a decoded image that would make them misbehave is rejected
// here as ErrCorrupt.
func readMetaPackedInto(br *bufio.Reader, size int64, ix *Index) error {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	fail := func(what string, err error) error {
		if errors.Is(err, ErrCorrupt) {
			return err
		}
		return corruptf("binary load: packed %s: %v", what, err)
	}
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	// readI32 decodes a uvarint that was written as value+bias and must
	// land in int32 range after unbiasing.
	readI32 := func(what string, bias int64) (int32, error) {
		v, err := readUvarint()
		if err != nil {
			return 0, fail(what, err)
		}
		u := int64(v) - bias
		if u < -1 || u > 1<<31-1 {
			return 0, corruptf("binary load: packed %s: value %d out of range", what, u)
		}
		return int32(u), nil
	}

	nLabels, err := readUvarint()
	if err != nil {
		return fail("label count", err)
	}
	if _, err := boundedCount("label count", nLabels, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return fail("label", err)
		}
		ix.labelIDs[l] = int32(len(ix.Labels))
		ix.Labels = append(ix.Labels, l)
	}
	nDocs, err := readUvarint()
	if err != nil {
		return fail("doc count", err)
	}
	if _, err := boundedCount("doc count", nDocs, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nDocs; i++ {
		d, err := readString()
		if err != nil {
			return fail("doc name", err)
		}
		ix.DocNames = append(ix.DocNames, d)
	}

	rawN, err := readUvarint()
	if err != nil {
		return fail("node count", err)
	}
	// Every node costs at least one byte somewhere (spine record, shape
	// record amortized over instances, or dispatch coverage); 1 is the only
	// safe per-node floor for a heavily deduplicated table.
	n, err := boundedCount("node count", rawN, 1, size, 1<<31)
	if err != nil {
		return err
	}
	p := &packedNodes{}
	// A loaded table starts a fresh delta-append lineage: debt counters
	// are not serialized (they only drive repack scheduling), so a loaded
	// image owes nothing until it delta-appends again.
	p.app = &appendState{owner: p}

	rawSpine, err := readUvarint()
	if err != nil {
		return fail("spine count", err)
	}
	nSpine, err := boundedCount("spine count", rawSpine, 8, size, uint64(n))
	if err != nil {
		return err
	}
	cap8 := func(c int) int { return min(c, preallocCap) }
	p.spLabel = make([]int32, 0, cap8(nSpine))
	p.spCat = make([]uint8, 0, cap8(nSpine))
	p.spChild = make([]int32, 0, cap8(nSpine))
	p.spSubtree = make([]int32, 0, cap8(nSpine))
	p.spParent = make([]int32, 0, cap8(nSpine))
	p.spLast = make([]int32, 0, cap8(nSpine))
	p.spDepth = make([]int32, 0, cap8(nSpine))
	p.spVal = make([]int32, 0, cap8(nSpine))
	for i := 0; i < nSpine; i++ {
		label, err := readI32("spine label", 0)
		if err != nil {
			return err
		}
		cat, err := br.ReadByte()
		if err != nil {
			return fail("spine category", err)
		}
		child, err := readI32("spine child count", 0)
		if err != nil {
			return err
		}
		subtree, err := readI32("spine subtree", 0)
		if err != nil {
			return err
		}
		parent, err := readI32("spine parent", 1)
		if err != nil {
			return err
		}
		last, err := readI32("spine last component", 0)
		if err != nil {
			return err
		}
		depth, err := readI32("spine depth", 0)
		if err != nil {
			return err
		}
		val, err := readI32("spine value id", 1)
		if err != nil {
			return err
		}
		p.spLabel = append(p.spLabel, label)
		p.spCat = append(p.spCat, cat)
		p.spChild = append(p.spChild, child)
		p.spSubtree = append(p.spSubtree, subtree)
		p.spParent = append(p.spParent, parent)
		p.spLast = append(p.spLast, last)
		p.spDepth = append(p.spDepth, depth)
		p.spVal = append(p.spVal, val)
	}

	rawInst, err := readUvarint()
	if err != nil {
		return fail("instance count", err)
	}
	nInst, err := boundedCount("instance count", rawInst, 5, size, uint64(n))
	if err != nil {
		return err
	}
	p.inStart = make([]int32, 0, cap8(nInst))
	p.inShape = make([]int32, 0, cap8(nInst))
	p.inParent = make([]int32, 0, cap8(nInst))
	p.inLast = make([]int32, 0, cap8(nInst))
	p.inDepth = make([]int32, 0, cap8(nInst))
	for i := 0; i < nInst; i++ {
		start, err := readI32("instance start", 0)
		if err != nil {
			return err
		}
		shape, err := readI32("instance shape", 0)
		if err != nil {
			return err
		}
		parent, err := readI32("instance parent", 1)
		if err != nil {
			return err
		}
		last, err := readI32("instance last component", 0)
		if err != nil {
			return err
		}
		depth, err := readI32("instance depth", 0)
		if err != nil {
			return err
		}
		p.inStart = append(p.inStart, start)
		p.inShape = append(p.inShape, shape)
		p.inParent = append(p.inParent, parent)
		p.inLast = append(p.inLast, last)
		p.inDepth = append(p.inDepth, depth)
	}

	rawShapes, err := readUvarint()
	if err != nil {
		return fail("shape count", err)
	}
	nShapes, err := boundedCount("shape count", rawShapes, 9, size, uint64(n)+1)
	if err != nil {
		return err
	}
	p.shOff = make([]int32, 0, cap8(nShapes+1))
	p.shOff = append(p.shOff, 0)
	for s := 0; s < nShapes; s++ {
		rawSize, err := readUvarint()
		if err != nil {
			return fail("shape size", err)
		}
		shSize, err := boundedCount("shape size", rawSize, 8, size, uint64(n))
		if err != nil {
			return err
		}
		if shSize < 1 {
			return corruptf("binary load: packed shape %d: empty shape", s)
		}
		for k := 0; k < shSize; k++ {
			label, err := readI32("shape label", 0)
			if err != nil {
				return err
			}
			cat, err := br.ReadByte()
			if err != nil {
				return fail("shape category", err)
			}
			child, err := readI32("shape child count", 0)
			if err != nil {
				return err
			}
			subtree, err := readI32("shape subtree", 0)
			if err != nil {
				return err
			}
			parent, err := readI32("shape parent", 1)
			if err != nil {
				return err
			}
			last, err := readI32("shape last component", 0)
			if err != nil {
				return err
			}
			depth, err := readI32("shape depth", 0)
			if err != nil {
				return err
			}
			val, err := readI32("shape value id", 1)
			if err != nil {
				return err
			}
			p.shLabel = append(p.shLabel, label)
			p.shCat = append(p.shCat, cat)
			p.shChild = append(p.shChild, child)
			p.shSubtree = append(p.shSubtree, subtree)
			p.shParent = append(p.shParent, parent)
			p.shLast = append(p.shLast, last)
			p.shDepth = append(p.shDepth, depth)
			p.shVal = append(p.shVal, val)
		}
		p.shOff = append(p.shOff, int32(len(p.shLabel)))
	}

	rawVals, err := readUvarint()
	if err != nil {
		return fail("value count", err)
	}
	nVals, err := boundedCount("value count", rawVals, 1, size, 1<<31)
	if err != nil {
		return err
	}
	arenaLen, err := readUvarint()
	if err != nil {
		return fail("value arena length", err)
	}
	if arenaLen > 1<<31 || (size >= 0 && arenaLen > uint64(size)) {
		return corruptf("binary load: packed value arena length %d exceeds input", arenaLen)
	}
	p.valArena = make([]byte, arenaLen)
	if _, err := io.ReadFull(br, p.valArena); err != nil {
		return fail("value arena", err)
	}
	p.valOff = make([]int32, 0, cap8(nVals+1))
	p.valOff = append(p.valOff, 0)
	off := int64(0)
	for v := 0; v < nVals; v++ {
		l, err := readUvarint()
		if err != nil {
			return fail("value length", err)
		}
		off += int64(l)
		if off > int64(arenaLen) {
			return corruptf("binary load: packed value lengths overrun arena")
		}
		p.valOff = append(p.valOff, int32(off))
	}
	if off != int64(arenaLen) {
		return corruptf("binary load: packed value lengths cover %d of %d arena bytes", off, arenaLen)
	}

	rawRoots, err := readUvarint()
	if err != nil {
		return fail("doc root count", err)
	}
	nRoots, err := boundedCount("doc root count", rawRoots, 2, size, uint64(n))
	if err != nil {
		return err
	}
	p.docStart = make([]int32, 0, cap8(nRoots))
	p.docNum = make([]int32, 0, cap8(nRoots))
	for k := 0; k < nRoots; k++ {
		start, err := readI32("doc root start", 0)
		if err != nil {
			return err
		}
		num, err := readI32("doc root number", 0)
		if err != nil {
			return err
		}
		p.docStart = append(p.docStart, start)
		p.docNum = append(p.docNum, num)
	}

	// Reconstruct the dispatch array: instance ranges claim their spans,
	// the remaining ordinals take spine slots in ascending order.
	p.ordInst = make([]int32, n)
	for ord := range p.ordInst {
		p.ordInst[ord] = -1 << 31 // poison: must be overwritten below
	}
	for i := int32(0); i < int32(len(p.inStart)); i++ {
		s := p.inShape[i]
		if s < 0 || int(s) >= nShapes {
			return corruptf("binary load: packed instance %d: shape %d out of range", i, s)
		}
		sz := p.shOff[s+1] - p.shOff[s]
		start := p.inStart[i]
		if start < 0 || int64(start)+int64(sz) > int64(n) {
			return corruptf("binary load: packed instance %d: range overruns node table", i)
		}
		for k := int32(0); k < sz; k++ {
			if p.ordInst[start+k] != -1<<31 {
				return corruptf("binary load: packed instance %d overlaps another", i)
			}
			p.ordInst[start+k] = i
		}
	}
	slot := int32(0)
	for ord := range p.ordInst {
		if p.ordInst[ord] == -1<<31 {
			if int(slot) >= nSpine {
				return corruptf("binary load: packed table needs more than %d spine slots", nSpine)
			}
			p.ordInst[ord] = ^slot
			slot++
		}
	}
	if int(slot) != nSpine {
		return corruptf("binary load: packed table uses %d of %d spine slots", slot, nSpine)
	}

	if err := p.validatePacked(); err != nil {
		return corruptf("binary load: %v", err)
	}
	for _, arr := range [][]int32{p.spLabel, p.shLabel} {
		for _, l := range arr {
			if l < 0 || int(l) >= len(ix.Labels) {
				return corruptf("binary load: packed node label %d out of range [0,%d)", l, len(ix.Labels))
			}
		}
	}
	ix.packed = p
	return nil
}

// readDewey decodes one varint-framed Dewey ID from the reader.
func readDewey(br *bufio.Reader) (dewey.ID, error) {
	doc, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	if length > 1<<20 {
		return dewey.ID{}, fmt.Errorf("implausible path length %d", length)
	}
	path := make([]int32, length)
	for i := range path {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return dewey.ID{}, err
		}
		path[i] = int32(uint32(c))
	}
	return dewey.ID{Doc: int32(uint32(doc)), Path: path}, nil
}
