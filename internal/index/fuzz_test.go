package index

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// FuzzLoad drives the auto-detecting loader with mutated images of all
// three snapshot formats (gob v1, binary v2, checksummed v3) plus
// adversarial stubs. The contract under fuzzing: Load returns an index or
// an error — it never panics, and the bounded pre-allocation means a
// corrupt header cannot demand an unbounded slice (the harness would OOM).
// An input that happens to decode must also survive Validate and a
// re-save round trip without crashing.
func FuzzLoad(f *testing.F) {
	ix, err := BuildDocument(xmltree.BuildFigure2a(), DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	var gob, bin, snap, binP, snapP bytes.Buffer
	if err := ix.Save(&gob); err != nil {
		f.Fatal(err)
	}
	if err := ix.SaveBinary(&bin); err != nil {
		f.Fatal(err)
	}
	if err := ix.SaveSnapshot(&snap); err != nil {
		f.Fatal(err)
	}
	// Packed-codec seeds: the same index in the DAG-compressed node-table
	// encoding (GKSI v3 and its snapshot envelope).
	packed := ix.Pack()
	if err := packed.SaveBinary(&binP); err != nil {
		f.Fatal(err)
	}
	if err := packed.SaveSnapshot(&snapP); err != nil {
		f.Fatal(err)
	}
	f.Add(gob.Bytes())
	f.Add(bin.Bytes())
	f.Add(snap.Bytes())
	f.Add(binP.Bytes())
	f.Add(snapP.Bytes())
	f.Add([]byte{})
	f.Add([]byte(binaryMagic))
	f.Add([]byte(snapshotMagic))
	// Truncations and flips of each format seed the interesting paths.
	for _, img := range [][]byte{gob.Bytes(), bin.Bytes(), snap.Bytes(), binP.Bytes(), snapP.Bytes()} {
		f.Add(img[:len(img)/2])
		f.Add(img[:min(len(img), 10)])
		flipped := bytes.Clone(img)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatalf("Load returned both an index and an error: %v", err)
			}
			return
		}
		if got == nil {
			t.Fatal("Load returned nil index without error")
		}
		// A structurally valid decode must also re-serialize cleanly.
		if got.Validate() == nil {
			var buf bytes.Buffer
			if err := got.SaveSnapshot(&buf); err != nil {
				t.Fatalf("re-save of loaded index failed: %v", err)
			}
		}
	})
}
