package index

import (
	"testing"

	"repro/internal/xmltree"
)

func TestAppendEqualsBatchBuild(t *testing.T) {
	mk := func(n int) []*xmltree.Document {
		docs := make([]*xmltree.Document, n)
		for i := range docs {
			docs[i] = xmltree.BuildFigure2a()
		}
		return docs
	}

	// Batch: all three at once.
	var batchRepo xmltree.Repository
	for _, d := range mk(3) {
		batchRepo.Add(d)
	}
	batch, err := Build(&batchRepo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Incremental: one, then append two.
	docs := mk(3)
	var repo xmltree.Repository
	repo.Add(docs[0])
	ix, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[1:] {
		ix, err = Append(ix, d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	assertIndexesEqual(t, batch, ix)
}

func TestAppendImmutability(t *testing.T) {
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure2a())
	ix, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := len(ix.Nodes)
	karenBefore := len(ix.Lookup("karen"))
	ix2, err := Append(ix, xmltree.BuildFigure2a(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Nodes) != nodesBefore || len(ix.Lookup("karen")) != karenBefore {
		t.Error("Append mutated the original index")
	}
	if len(ix2.Nodes) != 2*nodesBefore {
		t.Errorf("appended index has %d nodes, want %d", len(ix2.Nodes), 2*nodesBefore)
	}
	if ix2.Stats.Documents != 2 {
		t.Errorf("documents = %d", ix2.Stats.Documents)
	}
}

func TestAppendErrors(t *testing.T) {
	if _, err := Append(nil, xmltree.BuildFigure2a(), DefaultOptions()); err == nil {
		t.Error("nil index must fail")
	}
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure2a())
	ix, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Append(ix, nil, DefaultOptions()); err == nil {
		t.Error("nil document must fail")
	}
	if _, err := Append(ix, &xmltree.Document{Name: "empty"}, DefaultOptions()); err == nil {
		t.Error("rootless document must fail")
	}
}
