package index

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotTruncationTypedAtEveryBoundary is the regression for the
// loader's truncation reporting: a snapshot cut at ANY byte boundary —
// including inside the final length-framed payload section, which used to
// surface as a generic unexpected-EOF I/O error — must load as a typed
// ErrCorrupt, and the file-level loaders must name the file.
func TestSnapshotTruncationTypedAtEveryBoundary(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.gksidx")
	for cut := 0; cut < len(good); cut++ {
		_, err := Load(bytes.NewReader(good[:cut]))
		if err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes loaded without error", cut, len(good))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at byte %d: error not typed ErrCorrupt: %v", cut, err)
		}

		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), path) {
			t.Fatalf("cut at byte %d: LoadFile error %v does not name %s as corrupt", cut, err, path)
		}
		// Cuts inside the magic read as "not a GKS3 snapshot" — the
		// sentinel that sends callers to the full loader — which is as
		// typed as ErrCorrupt; anything else must be corrupt + file name.
		switch _, err := SkimSnapshotStats(path); {
		case err == nil:
			t.Fatalf("cut at byte %d: skim succeeded on a truncated snapshot", cut)
		case errors.Is(err, ErrSkimUnsupported):
		case errors.Is(err, ErrCorrupt) && strings.Contains(err.Error(), path):
		default:
			t.Fatalf("cut at byte %d: SkimSnapshotStats error %v is neither ErrSkimUnsupported nor ErrCorrupt naming %s", cut, err, path)
		}
	}
}

// TestSkimSnapshotStats checks the streaming stats skim returns exactly
// what a full load would, for both a pristine and a compacted index.
func TestSkimSnapshotStats(t *testing.T) {
	ix := buildFig2a(t)
	path := filepath.Join(t.TempDir(), "fig2a.gksidx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := SkimSnapshotStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if st != ix.Stats {
		t.Fatalf("SkimSnapshotStats = %+v, want %+v", st, ix.Stats)
	}
}

// TestSkimSnapshotStatsBitFlips flips every byte of a saved snapshot: the
// skim streams the whole payload through the checksum, so any damage —
// even in sections the skim does not decode — must surface as ErrCorrupt
// rather than silently wrong statistics.
func TestSkimSnapshotStatsBitFlips(t *testing.T) {
	ix := buildFig2a(t)
	path := filepath.Join(t.TempDir(), "flip.gksidx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.Stats
	for i := range good {
		damaged := append([]byte(nil), good...)
		damaged[i] ^= 0x01
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := SkimSnapshotStats(path)
		switch {
		case err == nil:
			// A flip that still checksums clean is impossible for CRC32
			// over a single-bit change; getting here means a framing field
			// was read before the checksum could object — the stats must
			// still never be silently wrong.
			if st != want {
				t.Fatalf("flip at %d: skim returned wrong stats without error: %+v", i, st)
			}
		case errors.Is(err, ErrSkimUnsupported):
			// Flips inside the magic demote the file to "not GKS3".
		case errors.Is(err, ErrCorrupt):
		default:
			t.Fatalf("flip at %d: error not typed: %v", i, err)
		}
	}
}

// TestSkimUnsupportedFormats: pre-GKS3 formats do not carry a trailing
// checksum the skim can verify, so it must refuse with the sentinel and
// leave the caller to fall back to a full load.
func TestSkimUnsupportedFormats(t *testing.T) {
	ix := buildFig2a(t)
	dir := t.TempDir()

	gob := filepath.Join(dir, "v1.gksidx")
	f, err := os.Create(gob)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := SkimSnapshotStats(gob); !errors.Is(err, ErrSkimUnsupported) {
		t.Fatalf("skim over gob snapshot: err = %v, want ErrSkimUnsupported", err)
	}

	var bin bytes.Buffer
	if err := ix.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.gksidx")
	if err := os.WriteFile(v2, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SkimSnapshotStats(v2); !errors.Is(err, ErrSkimUnsupported) {
		t.Fatalf("skim over bare v2 image: err = %v, want ErrSkimUnsupported", err)
	}

	if _, err := SkimSnapshotStats(filepath.Join(dir, "missing.gksidx")); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("skim over missing file: err = %v, want a plain I/O error", err)
	}
}
