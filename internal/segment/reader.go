package segment

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/postings"
)

// Options configures a Reader.
type Options struct {
	// Cache, when non-nil, is a shared block cache (its capacity and
	// metrics were fixed at construction). When nil the reader builds a
	// private cache of CacheBytes capacity.
	Cache *BlockCache
	// CacheBytes is the private cache capacity when Cache is nil;
	// 0 means DefaultCacheBytes (negative disables caching entirely).
	CacheBytes int64
	// Metrics receives block-fetch latencies, and — when the reader builds
	// its own cache — the cache counters too. Nil is allowed.
	Metrics Metrics
}

// nextRID hands out process-unique reader ids for cache keying.
var nextRID atomic.Uint64

// blockMeta locates one compressed block inside the file.
type blockMeta struct {
	off  int64
	cLen int64
	uLen int64
	crc  uint32
}

// termEntry locates one term's posting list inside a block.
type termEntry struct {
	term  string
	block int32
	off   int32
	count int32
}

// maxBlockULen bounds a single block's claimed uncompressed size; the
// writer never produces blocks anywhere near this, so larger values prove
// a corrupt footer before any allocation.
const maxBlockULen = 1 << 31

// Reader serves a GKS4 segment: meta (labels, documents, node table) and
// the term directory are decoded eagerly at open; posting blocks are
// fetched by ReadAt on first use and held in the block cache. All methods
// are safe for concurrent use.
type Reader struct {
	f       *os.File
	path    string
	rid     uint64
	cache   *BlockCache
	metrics Metrics

	stats  index.Stats
	ix     *index.Index
	nNodes int
	blocks []blockMeta
	terms  []termEntry

	blockReads atomic.Int64
	closed     atomic.Bool
	closeOnce  sync.Once
	closeErr   error
}

// openFile isolates the os dependency for the magic sniffer.
func openFile(path string) (*os.File, error) { return os.Open(path) }

// OpenFile opens a GKS4 segment. Only the footer, term directory and the
// raw meta section are read — no posting block is touched, nothing is
// inflated — so open time and resident memory are independent of the
// posting volume. Damaged files fail with index.ErrCorrupt naming the
// file.
func OpenFile(path string, opts Options) (*Reader, error) {
	f, _, hdrLen, foot, err := openFooter(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		f:       f,
		path:    path,
		rid:     nextRID.Add(1),
		metrics: opts.Metrics,
		stats:   foot.stats,
		blocks:  foot.blocks,
		terms:   foot.terms,
	}
	if r.metrics == nil {
		r.metrics = nopMetrics{}
	}
	if opts.Cache != nil {
		r.cache = opts.Cache
	} else {
		capacity := opts.CacheBytes
		if capacity == 0 {
			capacity = DefaultCacheBytes
		}
		r.cache = NewBlockCacheMetrics(capacity, opts.Metrics)
	}
	fail := func(err error) (*Reader, error) {
		f.Close()
		return nil, err
	}

	if foot.metaOff != int64(hdrLen) {
		return fail(corruptf("segment %s: footer meta offset %d does not match header length %d", path, foot.metaOff, hdrLen))
	}
	metaBuf := make([]byte, foot.metaLen)
	if _, err := f.ReadAt(metaBuf, foot.metaOff); err != nil {
		return fail(corruptf("segment %s: read meta: %v", path, err))
	}
	if crc32.ChecksumIEEE(metaBuf) != foot.metaCRC {
		return fail(corruptf("segment %s: meta checksum mismatch", path))
	}
	meta, err := index.DecodeMeta(bytes.NewReader(metaBuf), int64(len(metaBuf)))
	if err != nil {
		if errIsCorrupt(err) {
			return fail(fmt.Errorf("segment %s: %w", path, err))
		}
		return fail(corruptf("segment %s: decode meta: %v", path, err))
	}
	r.nNodes = meta.NodeCount()
	// Posting ordinals index the node table, so no list can hold more
	// entries than there are nodes; a larger directory count is corruption
	// caught before the first decode preallocates.
	for i := range r.terms {
		if int(r.terms[i].count) > r.nNodes {
			return fail(corruptf("segment %s: term %q claims %d postings with %d nodes", path, r.terms[i].term, r.terms[i].count, r.nNodes))
		}
	}
	meta.Stats = foot.stats
	r.ix = index.NewLazy(meta, r)
	// A reader dropped without Close (e.g. a failed reload generation)
	// must not leak its fd or its cache share.
	runtime.SetFinalizer(r, (*Reader).finalize)
	return r, nil
}

// footerData is the parsed, CRC-verified footer.
type footerData struct {
	stats   index.Stats
	metaOff int64
	metaLen int64
	metaCRC uint32
	blocks  []blockMeta
	terms   []termEntry
}

// openFooter opens path and parses header, trailer and footer — shared by
// OpenFile and ReadStats. On success the caller owns the returned file.
func openFooter(path string) (*os.File, int64, int, *footerData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, nil, fmt.Errorf("segment: %w", err)
	}
	fail := func(err error) (*os.File, int64, int, *footerData, error) {
		f.Close()
		return nil, 0, 0, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("segment: %w", err))
	}
	size := fi.Size()
	if size < int64(len(magic))+1+trailerSize {
		return fail(corruptf("segment %s: %d bytes is too small for a segment", path, size))
	}

	// Header: magic + version varint.
	var hdr [len(magic) + binary.MaxVarintLen64]byte
	hn, err := f.ReadAt(hdr[:min(int64(len(hdr)), size)], 0)
	if err != nil && err != io.EOF {
		return fail(corruptf("segment %s: read header: %v", path, err))
	}
	if string(hdr[:len(magic)]) != magic {
		return fail(corruptf("segment %s: bad magic %q", path, hdr[:len(magic)]))
	}
	version, vn := binary.Uvarint(hdr[len(magic):hn])
	if vn <= 0 {
		return fail(corruptf("segment %s: truncated version", path))
	}
	if version != formatVersion {
		return fail(corruptf("segment %s: unsupported version %d", path, version))
	}
	hdrLen := len(magic) + vn

	// Trailer: footerLen, footerCRC, trailing magic.
	var tail [trailerSize]byte
	if _, err := f.ReadAt(tail[:], size-trailerSize); err != nil {
		return fail(corruptf("segment %s: read trailer: %v", path, err))
	}
	if string(tail[8:12]) != trailerMagic {
		return fail(corruptf("segment %s: bad trailer magic %q", path, tail[8:12]))
	}
	footerLen := int64(binary.LittleEndian.Uint32(tail[0:4]))
	footerCRC := binary.LittleEndian.Uint32(tail[4:8])
	if footerLen == 0 || footerLen > size-trailerSize-int64(hdrLen) {
		return fail(corruptf("segment %s: implausible footer length %d in a %d-byte file", path, footerLen, size))
	}
	fbuf := make([]byte, footerLen)
	if _, err := f.ReadAt(fbuf, size-trailerSize-footerLen); err != nil {
		return fail(corruptf("segment %s: read footer: %v", path, err))
	}
	if crc32.ChecksumIEEE(fbuf) != footerCRC {
		return fail(corruptf("segment %s: footer checksum mismatch", path))
	}
	foot, err := parseFooter(fbuf, size, footerLen, path)
	if err != nil {
		return fail(err)
	}
	return f, size, hdrLen, foot, nil
}

// parseFooter decodes and validates the CRC-verified footer bytes. Every
// count is bounded against the bytes that could plausibly hold it and all
// derived offsets are checked against the file size, so a corrupt footer
// that survived the CRC (or a fuzzer-built one) fails typed instead of
// demanding absurd allocations.
func parseFooter(fbuf []byte, size, footerLen int64, path string) (*footerData, error) {
	c := cursor{buf: fbuf}
	bad := func(format string, args ...any) (*footerData, error) {
		return nil, corruptf("segment %s: footer: %s", path, fmt.Sprintf(format, args...))
	}

	var foot footerData
	vals := make([]int, index.StatsFieldCount)
	for i := range vals {
		v, err := c.uvarint()
		if err != nil {
			return bad("stats: %v", err)
		}
		if v > 1<<62 {
			return bad("implausible stats value %d", v)
		}
		vals[i] = int(v)
	}
	foot.stats.SetFields(vals)

	metaOff, err1 := c.uvarint()
	metaLen, err2 := c.uvarint()
	metaCRC, err3 := c.uvarint()
	if err := errors.Join(err1, err2, err3); err != nil {
		return bad("meta frame: %v", err)
	}
	if metaOff > uint64(size) || metaLen > uint64(size) || metaOff+metaLen > uint64(size) {
		return bad("meta frame [%d,+%d) exceeds %d-byte file", metaOff, metaLen, size)
	}
	if metaCRC > 1<<32-1 {
		return bad("implausible meta checksum %d", metaCRC)
	}
	foot.metaOff = int64(metaOff)
	foot.metaLen = int64(metaLen)
	foot.metaCRC = uint32(metaCRC)

	nBlocks, err := c.uvarint()
	if err != nil {
		return bad("block count: %v", err)
	}
	// Each block entry is at least 3 varint bytes of footer.
	if nBlocks > uint64(c.remaining())/3 {
		return bad("block count %d exceeds what %d footer bytes can hold", nBlocks, c.remaining())
	}
	foot.blocks = make([]blockMeta, nBlocks)
	off := foot.metaOff + foot.metaLen
	for i := range foot.blocks {
		cLen, err1 := c.uvarint()
		uLen, err2 := c.uvarint()
		crc, err3 := c.uvarint()
		if err := errors.Join(err1, err2, err3); err != nil {
			return bad("block %d: %v", i, err)
		}
		if cLen == 0 || cLen > uint64(size) || uLen == 0 || uLen > maxBlockULen || crc > 1<<32-1 {
			return bad("block %d: implausible frame (clen %d, ulen %d)", i, cLen, uLen)
		}
		foot.blocks[i] = blockMeta{off: off, cLen: int64(cLen), uLen: int64(uLen), crc: uint32(crc)}
		off += int64(cLen)
		if off > size {
			return bad("block %d ends at %d, past the %d-byte file", i, off, size)
		}
	}
	if off+footerLen+trailerSize != size {
		return bad("sections end at %d but footer starts at %d", off, size-trailerSize-footerLen)
	}

	nTerms, err := c.uvarint()
	if err != nil {
		return bad("term count: %v", err)
	}
	// Each term entry is at least 5 varint bytes of footer.
	if nTerms > uint64(c.remaining())/5 {
		return bad("term count %d exceeds what %d footer bytes can hold", nTerms, c.remaining())
	}
	foot.terms = make([]termEntry, 0, nTerms)
	prev, prevBlock := "", int64(0)
	for i := uint64(0); i < nTerms; i++ {
		shared, err1 := c.uvarint()
		suffixLen, err2 := c.uvarint()
		if err := errors.Join(err1, err2); err != nil {
			return bad("term %d: %v", i, err)
		}
		if shared > uint64(len(prev)) {
			return bad("term %d: shared prefix %d longer than previous term", i, shared)
		}
		suffix, err := c.bytes(int(suffixLen))
		if err != nil {
			return bad("term %d: suffix: %v", i, err)
		}
		term := prev[:shared] + string(suffix)
		if term <= prev && i > 0 {
			return bad("term %d: %q not sorted after %q", i, term, prev)
		}
		blockDelta, err1 := c.uvarint()
		offIn, err2 := c.uvarint()
		count, err3 := c.uvarint()
		if err := errors.Join(err1, err2, err3); err != nil {
			return bad("term %q: %v", term, err)
		}
		block := prevBlock + int64(blockDelta)
		if block >= int64(len(foot.blocks)) {
			return bad("term %q: block %d of %d", term, block, len(foot.blocks))
		}
		uLen := uint64(foot.blocks[block].uLen)
		// Every posting occupies at least one byte of the decompressed
		// block, so offset + count must fit inside it.
		if offIn > uLen || count > uLen-offIn {
			return bad("term %q: %d postings at offset %d exceed block of %d bytes", term, count, offIn, uLen)
		}
		foot.terms = append(foot.terms, termEntry{
			term:  term,
			block: int32(block),
			off:   int32(offIn),
			count: int32(count),
		})
		prev, prevBlock = term, block
	}
	return &foot, nil
}

// cursor walks a byte slice of varints.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errors.New("truncated varint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(c.buf)-c.off {
		return nil, fmt.Errorf("%d bytes past end", n)
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) remaining() int { return len(c.buf) - c.off }

// inflate decompresses a flate stream that must yield exactly uLen bytes.
func inflate(cbuf []byte, uLen int64) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(cbuf))
	defer fr.Close()
	var b bytes.Buffer
	if uLen < 1<<20 {
		b.Grow(int(uLen))
	}
	n, err := io.Copy(&b, io.LimitReader(fr, uLen+1))
	if err != nil {
		return nil, fmt.Errorf("inflate: %v", err)
	}
	if n != uLen {
		return nil, fmt.Errorf("inflate: %d bytes, want %d", n, uLen)
	}
	return b.Bytes(), nil
}

// Index returns the lazily-backed index view of the segment: meta is
// resident, posting lists are fetched through the reader on demand. The
// index stays valid until Close.
func (r *Reader) Index() *index.Index { return r.ix }

// Stats returns the index statistics recorded in the footer.
func (r *Reader) Stats() index.Stats { return r.stats }

// Path returns the file path the reader serves.
func (r *Reader) Path() string { return r.path }

// TermCount returns the number of distinct terms in the directory.
func (r *Reader) TermCount() int { return len(r.terms) }

// NumBlocks returns the number of posting blocks in the segment.
func (r *Reader) NumBlocks() int { return len(r.blocks) }

// Cache returns the block cache the reader fetches through. When the
// cache is shared, its Bytes()/Len() cover every attached reader.
func (r *Reader) Cache() *BlockCache { return r.cache }

// BlockReads returns the number of posting blocks fetched from disk so
// far (cache misses) — the regression hook for "stats read no blocks".
func (r *Reader) BlockReads() int64 { return r.blockReads.Load() }

// ForEachTerm calls f for every term in sorted order with its posting
// count. The directory is resident, so iteration performs no I/O; the
// only error returned is f's own.
func (r *Reader) ForEachTerm(f func(term string, count int) error) error {
	for i := range r.terms {
		if err := f(r.terms[i].term, int(r.terms[i].count)); err != nil {
			return err
		}
	}
	return nil
}

// Postings returns the posting list for term, fetching (and caching) its
// block if needed. An absent term returns (nil, nil). The returned slice
// is freshly decoded and owned by the caller.
func (r *Reader) Postings(term string) ([]int32, error) {
	i := sort.Search(len(r.terms), func(i int) bool { return r.terms[i].term >= term })
	if i >= len(r.terms) || r.terms[i].term != term {
		return nil, nil
	}
	t := &r.terms[i]
	block, err := r.fetchBlock(t.block)
	if err != nil {
		return nil, err
	}
	if int(t.off) > len(block) {
		return nil, corruptf("segment %s: term %q offset %d past block end %d", r.path, term, t.off, len(block))
	}
	list, _, err := postings.Decode(block[t.off:], int(t.count))
	if err != nil {
		return nil, corruptf("segment %s: term %q: %v", r.path, term, err)
	}
	// postings.Decode tolerates zero deltas (it only forbids overflow), so
	// re-validate what the index invariants require: strictly increasing
	// ordinals inside the node table. A flipped bit that survives into a
	// plausible varint stream dies here, not in the search engine.
	prev := int32(-1)
	for _, v := range list {
		if v <= prev || int(v) >= r.nNodes {
			return nil, corruptf("segment %s: term %q: ordinal %d out of order or range", r.path, term, v)
		}
		prev = v
	}
	return list, nil
}

// fetchBlock returns block b's decompressed bytes, via the cache.
func (r *Reader) fetchBlock(b int32) ([]byte, error) {
	key := cacheKey{rid: r.rid, block: b}
	if data, ok := r.cache.get(key); ok {
		return data, nil
	}
	if r.closed.Load() {
		return nil, fmt.Errorf("segment %s: reader is closed", r.path)
	}
	bm := &r.blocks[b]
	start := time.Now()
	cbuf := make([]byte, bm.cLen)
	if _, err := r.f.ReadAt(cbuf, bm.off); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil, fmt.Errorf("segment %s: reader is closed", r.path)
		}
		return nil, corruptf("segment %s: block %d: read: %v", r.path, b, err)
	}
	if crc32.ChecksumIEEE(cbuf) != bm.crc {
		return nil, corruptf("segment %s: block %d: checksum mismatch", r.path, b)
	}
	data, err := inflate(cbuf, bm.uLen)
	if err != nil {
		return nil, corruptf("segment %s: block %d: %v", r.path, b, err)
	}
	r.metrics.ObserveBlockFetch(time.Since(start))
	r.blockReads.Add(1)
	r.cache.put(key, data)
	return data, nil
}

// Close releases the file descriptor and evicts this reader's blocks from
// the cache. Safe to call more than once. Posting fetches after Close
// fail; already-materialized results remain valid.
func (r *Reader) Close() error {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		runtime.SetFinalizer(r, nil)
		r.cache.DropReader(r.rid)
		r.closeErr = r.f.Close()
	})
	return r.closeErr
}

func (r *Reader) finalize() { r.Close() }

// ReadStats returns the index statistics of a GKS4 segment by reading
// only the trailer and footer — no posting block and not even the meta
// section is touched, so `gks stats` on a huge segment is O(footer).
func ReadStats(path string) (index.Stats, error) {
	f, _, _, foot, err := openFooter(path)
	if err != nil {
		return index.Stats{}, err
	}
	f.Close()
	return foot.stats, nil
}
