// Package segment implements the GKS4 block-compressed segment format:
// the lazily-loaded, bounded-memory on-disk representation of a GKS index
// (ROADMAP item 3, in the spirit of sorted-string tables).
//
// A GKS3 snapshot decodes the entire index — node table AND every posting
// list — into RAM at boot, so boot latency and resident memory scale
// linearly with corpus size. A GKS4 segment splits the index into an
// eagerly-decoded meta section (labels, document names, the pre-order node
// table the search engine walks directly) and posting blocks that stay on
// disk until a query asks for a term. Opening a segment reads only the
// footer and the raw meta section; posting blocks are fetched by pread on
// demand, verified, decompressed, and held in a byte-capacity LRU cache
// shared across queries (and, optionally, across reload generations).
// The meta section is stored uncompressed on purpose: it is decoded at
// every open, and inflating it would put flate on the boot path — the
// posting blocks, which boot never touches, carry the compression.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GKS4"                      4 bytes
//	version (= 1)                     uvarint
//	meta section                      raw (uncompressed), CRC-protected.
//	  Two variants, self-describing by the leading uvarint:
//	  flat (leading label count >= 1):
//	    labels:   count, len+bytes each
//	    docs:     count, len+bytes each
//	    nodes:    count, then per node the v2 encoding:
//	              dewey(binary codec) label cat(byte) childCount subtree
//	              parent+1 hasValue(byte) [valueLen valueBytes]
//	  packed (leading uvarint 0, impossible as a label count):
//	    the DAG-compressed node table of index.EncodeMeta — spine /
//	    instance / shape / value-arena arrays; shared subtrees stored
//	    once. The writer emits this variant by default (see
//	    WriterOptions.FlatNodes) and the reader accepts both.
//	posting blocks                    concatenated, each flate-compressed;
//	                                  decompressed form: the delta-varint
//	                                  posting lists of whole terms, packed
//	                                  back to back
//	footer:
//	    stats                         10 uvarints (field order of format v2)
//	    metaOff metaLen               uvarints
//	    metaCRC                       uvarint (CRC32-IEEE of meta bytes)
//	    blockCount                    uvarint, then per block:
//	        cLen uLen crc             uvarints (CRC over compressed bytes;
//	                                  offsets derive from metaOff+metaLen
//	                                  and the running cLen sum)
//	    termCount                     uvarint, then per term, sorted:
//	        sharedPrefixLen           uvarint (with the previous term)
//	        suffixLen suffixBytes     prefix-compressed term key
//	        blockDelta                uvarint (block index, delta-coded;
//	                                  term indices are non-decreasing)
//	        offsetInBlock count       uvarints (byte offset of the term's
//	                                  list in the decompressed block, and
//	                                  its posting count)
//	trailer:
//	    footerLen                     4 bytes little-endian
//	    footerCRC                     4 bytes little-endian (CRC32-IEEE)
//	    trailer magic "4SKG"          4 bytes
//
// Every term's list lives wholly inside one block; the writer packs terms
// into ~DefaultBlockSize uncompressed bytes per block and lets a single
// oversized list overflow its own block rather than splitting it. The
// footer is the only structure trusted before its CRC passes, and every
// decoded posting list is re-validated (strictly increasing, within the
// node table) at fetch time, so a damaged block surfaces as
// index.ErrCorrupt — never a panic or a silently wrong result.
//
// GKS3 snapshots remain fully supported for migration; `gks index
// -format=gks4` and `gks convert` produce segments, and index.Load paths
// are untouched (dispatch happens one level up, in the root package).
package segment

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/index"
)

const (
	// magic heads every segment file.
	magic = "GKS4"
	// trailerMagic ends every segment file; the reader locates the footer
	// from the file tail, so the trailer has its own magic.
	trailerMagic = "4SKG"
	// formatVersion is the GKS4 format version written and accepted.
	formatVersion = 1
	// trailerSize is footerLen(4) + footerCRC(4) + trailerMagic(4).
	trailerSize = 12
)

// DefaultBlockSize is the target uncompressed size of one posting block.
// Small enough that a point lookup decompresses little, large enough that
// flate has context to squeeze delta varints.
const DefaultBlockSize = 32 << 10

// DefaultCacheBytes is the block-cache capacity used when the caller does
// not supply a cache of its own.
const DefaultCacheBytes = 64 << 20

// ErrCorrupt aliases index.ErrCorrupt: a damaged segment fails with the
// same typed error as a damaged GKS3 snapshot, so reload/startup paths
// match one error for "the file is bad" regardless of format.
var ErrCorrupt = index.ErrCorrupt

// corruptf builds an ErrCorrupt-wrapped error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Metrics is the observability surface of the block-serving path. All
// methods must be safe for concurrent use; obs.Registry implements it.
type Metrics interface {
	// BlockCacheHit counts a posting-block fetch served from the cache.
	BlockCacheHit()
	// BlockCacheMiss counts a posting-block fetch that went to disk.
	BlockCacheMiss()
	// BlockCacheEvict counts a block evicted to respect the byte capacity.
	BlockCacheEvict()
	// SetBlockCacheBytes reports the decompressed bytes resident in the
	// cache after an insert or eviction.
	SetBlockCacheBytes(n int64)
	// ObserveBlockFetch records the latency of one disk block fetch
	// (pread + CRC + decompress), cache misses only.
	ObserveBlockFetch(d time.Duration)
}

// nopMetrics is the nil-safe default sink.
type nopMetrics struct{}

func (nopMetrics) BlockCacheHit()                  {}
func (nopMetrics) BlockCacheMiss()                 {}
func (nopMetrics) BlockCacheEvict()                {}
func (nopMetrics) SetBlockCacheBytes(int64)        {}
func (nopMetrics) ObserveBlockFetch(time.Duration) {}

// IsSegmentFile sniffs path's magic bytes. It reports false on any read
// error — callers fall through to the GKS3/GKSI/gob loaders, which produce
// the proper error for a missing or unreadable file.
func IsSegmentFile(path string) bool {
	f, err := openFile(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [4]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		return false
	}
	return string(m[:]) == magic
}

// errIsCorrupt reports whether err is already typed corruption.
func errIsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
