package segment

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/index"
	"repro/internal/postings"
)

// WriterOptions tunes segment construction.
type WriterOptions struct {
	// BlockSize is the target uncompressed bytes per posting block;
	// non-positive means DefaultBlockSize. A single list larger than the
	// target gets a block of its own rather than being split.
	BlockSize int
	// Level is the flate compression level (flate.BestSpeed ..
	// flate.BestCompression); 0 means flate.BestSpeed. (flate's own zero,
	// NoCompression, is not useful here — pass flate.HuffmanOnly for the
	// cheapest real mode.)
	Level int
	// FlatNodes stores the meta section's node table in the flat per-node
	// v2 encoding instead of the packed (DAG-deduplicated) form. The packed
	// form is the default: it opens into the memory-bounded packed index,
	// which repetitive corpora shrink severalfold. Flat stays available for
	// byte-compatibility with pre-packed tooling.
	FlatNodes bool
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.Level == 0 {
		o.Level = flate.BestSpeed
	}
	return o
}

// WriteFile writes ix to path as a GKS4 segment with default options,
// atomically (temp file + fsync + rename, like index.SaveFile).
func WriteFile(path string, ix *index.Index) error {
	return WriteFileOpts(path, ix, WriterOptions{})
}

// WriteFileOpts is WriteFile with explicit options.
func WriteFileOpts(path string, ix *index.Index, opts WriterOptions) error {
	return index.WriteFileAtomic(path, func(w io.Writer) error {
		return Write(w, ix, opts)
	})
}

// Write serializes ix as a GKS4 segment. The source may be eager (GKS3 in
// memory) or itself lazily backed by another segment — posting lists are
// streamed through ForEachKeywordSorted either way, so converting never
// needs the whole posting set resident at once (blocks are buffered until
// the final layout is known, but each raw list is transient).
func Write(w io.Writer, ix *index.Index, opts WriterOptions) error {
	opts = opts.withDefaults()
	ix = ix.Compacted()
	if opts.FlatNodes {
		ix = ix.Unpacked()
	} else {
		// Serve readers the DAG-compressed node table: shared subtrees are
		// stored once and the segment's resident footprint shrinks with the
		// corpus's repetition. Pack is a no-op on an already-packed source.
		ix = ix.Pack()
	}

	// Meta section: labels, document names, node table — the v2 encoding,
	// stored raw (CRC-protected). It is decoded eagerly at every open, so
	// burning boot time inflating it would cancel the format's fast-boot
	// property; the posting blocks, which boot never touches, carry the
	// compression instead.
	var metaRaw bytes.Buffer
	if err := index.EncodeMeta(&metaRaw, ix); err != nil {
		return fmt.Errorf("segment: encode meta: %w", err)
	}
	meta := metaRaw.Bytes()

	// Pack whole terms into blocks of ~BlockSize uncompressed bytes.
	type termLoc struct {
		term  string
		block int
		off   int
		count int
	}
	var (
		terms   []termLoc
		blocksC [][]byte // compressed blocks
		blocksU []int    // their uncompressed lengths
		cur     bytes.Buffer
		scratch []byte
	)
	flushBlock := func() error {
		if cur.Len() == 0 {
			return nil
		}
		c, err := deflate(cur.Bytes(), opts.Level)
		if err != nil {
			return fmt.Errorf("segment: compress block %d: %w", len(blocksC), err)
		}
		blocksC = append(blocksC, c)
		blocksU = append(blocksU, cur.Len())
		cur.Reset()
		return nil
	}
	err := ix.ForEachKeywordSorted(func(kw string, list []int32) error {
		scratch = postings.Encode(scratch[:0], list)
		if cur.Len() > 0 && cur.Len()+len(scratch) > opts.BlockSize {
			if err := flushBlock(); err != nil {
				return err
			}
		}
		terms = append(terms, termLoc{kw, len(blocksC), cur.Len(), len(list)})
		cur.Write(scratch)
		return nil
	})
	if err != nil {
		return err
	}
	if err := flushBlock(); err != nil {
		return err
	}

	// Footer: stats, meta frame, block directory, prefix-compressed term
	// directory. Block offsets are derived (meta end + running compressed
	// lengths), so only lengths are stored.
	var f []byte
	for _, v := range ix.Stats.Fields() {
		f = binary.AppendUvarint(f, uint64(v))
	}
	metaOff := len(magic) + uvarintLen(formatVersion)
	f = binary.AppendUvarint(f, uint64(metaOff))
	f = binary.AppendUvarint(f, uint64(len(meta)))
	f = binary.AppendUvarint(f, uint64(crc32.ChecksumIEEE(meta)))
	f = binary.AppendUvarint(f, uint64(len(blocksC)))
	for i, c := range blocksC {
		f = binary.AppendUvarint(f, uint64(len(c)))
		f = binary.AppendUvarint(f, uint64(blocksU[i]))
		f = binary.AppendUvarint(f, uint64(crc32.ChecksumIEEE(c)))
	}
	f = binary.AppendUvarint(f, uint64(len(terms)))
	prev, prevBlock := "", 0
	for _, t := range terms {
		shared := sharedPrefix(prev, t.term)
		f = binary.AppendUvarint(f, uint64(shared))
		f = binary.AppendUvarint(f, uint64(len(t.term)-shared))
		f = append(f, t.term[shared:]...)
		f = binary.AppendUvarint(f, uint64(t.block-prevBlock))
		f = binary.AppendUvarint(f, uint64(t.off))
		f = binary.AppendUvarint(f, uint64(t.count))
		prev, prevBlock = t.term, t.block
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(magic)
	var vbuf []byte
	vbuf = binary.AppendUvarint(vbuf, formatVersion)
	bw.Write(vbuf)
	bw.Write(meta)
	for _, c := range blocksC {
		bw.Write(c)
	}
	bw.Write(f)
	var tail [trailerSize]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(len(f)))
	binary.LittleEndian.PutUint32(tail[4:8], crc32.ChecksumIEEE(f))
	copy(tail[8:12], trailerMagic)
	bw.Write(tail[:])
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("segment: write: %w", err)
	}
	return nil
}

// deflate compresses data with flate at the given level.
func deflate(data []byte, level int) ([]byte, error) {
	var b bytes.Buffer
	fw, err := flate.NewWriter(&b, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// sharedPrefix returns the length of the longest common prefix of a and b.
func sharedPrefix(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
