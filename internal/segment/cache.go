package segment

import (
	"container/list"
	"sync"
)

// cacheKey identifies one decompressed block: the owning reader's unique
// id plus the block index inside that reader's segment. Reader ids are
// never reused, so a reloaded segment at the same path cannot alias stale
// cached blocks.
type cacheKey struct {
	rid   uint64
	block int32
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// BlockCache is a byte-capacity LRU cache of decompressed posting blocks.
// It is safe for concurrent use and designed to be shared: one cache can
// back many readers (all shards, successive hot-reload generations), so
// the resident-block budget is a single process-wide number rather than
// per-segment. Capacity counts decompressed payload bytes; an entry larger
// than the whole capacity is admitted and immediately evicted, so
// oversized blocks pass through without wedging the cache.
type BlockCache struct {
	capacity int64
	metrics  Metrics

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
	bytes int64
}

// NewBlockCache returns a cache bounded to capacity decompressed bytes.
// A non-positive capacity yields a cache that stores nothing (every fetch
// is a miss) — useful in tests that must force disk reads.
func NewBlockCache(capacity int64) *BlockCache {
	return NewBlockCacheMetrics(capacity, nil)
}

// NewBlockCacheMetrics is NewBlockCache with an observability sink for
// hit/miss/eviction counts and the resident-bytes gauge. A nil sink is
// allowed.
func NewBlockCacheMetrics(capacity int64, m Metrics) *BlockCache {
	if m == nil {
		m = nopMetrics{}
	}
	return &BlockCache{
		capacity: capacity,
		metrics:  m,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached block and marks it most-recently-used.
func (c *BlockCache) get(k cacheKey) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		c.metrics.BlockCacheMiss()
		return nil, false
	}
	c.ll.MoveToFront(e)
	data := e.Value.(*cacheEntry).data
	c.mu.Unlock()
	c.metrics.BlockCacheHit()
	return data, true
}

// put inserts (or refreshes) a block, then evicts least-recently-used
// entries until the cache is back within capacity. The fresh entry sits at
// the front, so it is evicted only if it alone exceeds the capacity.
func (c *BlockCache) put(k cacheKey, data []byte) {
	c.mu.Lock()
	if e, ok := c.items[k]; ok {
		// A concurrent fetch of the same block won the race; keep the
		// resident copy and just refresh recency.
		c.ll.MoveToFront(e)
		c.mu.Unlock()
		return
	}
	e := c.ll.PushFront(&cacheEntry{key: k, data: data})
	c.items[k] = e
	c.bytes += int64(len(data))
	evicted := 0
	for c.bytes > c.capacity && c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
		evicted++
	}
	resident := c.bytes
	c.mu.Unlock()
	for i := 0; i < evicted; i++ {
		c.metrics.BlockCacheEvict()
	}
	c.metrics.SetBlockCacheBytes(resident)
}

// removeLocked unlinks one element; the caller holds c.mu.
func (c *BlockCache) removeLocked(e *list.Element) {
	ent := c.ll.Remove(e).(*cacheEntry)
	delete(c.items, ent.key)
	c.bytes -= int64(len(ent.data))
}

// DropReader evicts every block owned by reader id rid — called by
// Reader.Close so a retired hot-reload generation releases its share of a
// cache it no longer needs.
func (c *BlockCache) DropReader(rid uint64) {
	c.mu.Lock()
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		if e.Value.(*cacheEntry).key.rid == rid {
			c.removeLocked(e)
		}
	}
	resident := c.bytes
	c.mu.Unlock()
	c.metrics.SetBlockCacheBytes(resident)
}

// Len returns the number of resident blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident decompressed payload bytes.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
