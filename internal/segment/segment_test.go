package segment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func tinyIndex(t *testing.T) *index.Index {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure2a(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func bigIndex(t *testing.T) *index.Index {
	t.Helper()
	ix, err := index.Build(datagen.Repo(datagen.SwissProt(datagen.Config{Seed: 9, Scale: 2})), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func writeTemp(t *testing.T, ix *index.Index, opts WriterOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.gks4")
	if err := WriteFileOpts(path, ix, opts); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertSamepostings walks every term of the source index and compares
// the segment's lazily fetched list against the resident one.
func assertSamePostings(t *testing.T, ix *index.Index, r *Reader) {
	t.Helper()
	terms := 0
	err := r.ForEachTerm(func(term string, count int) error {
		want := ix.PostingsFor(term)
		got, err := r.Postings(term)
		if err != nil {
			t.Fatalf("Postings(%q): %v", term, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Postings(%q) = %v, want %v", term, got, want)
		}
		if count != len(want) {
			t.Fatalf("directory count for %q = %d, want %d", term, count, len(want))
		}
		terms++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if terms != r.TermCount() || terms != ix.Stats.DistinctKeywords {
		t.Fatalf("terms walked = %d, TermCount = %d, DistinctKeywords = %d", terms, r.TermCount(), ix.Stats.DistinctKeywords)
	}
}

func TestRoundTripTiny(t *testing.T) {
	ix := tinyIndex(t)
	path := writeTemp(t, ix, WriterOptions{})
	r, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Stats() != ix.Stats {
		t.Fatalf("Stats = %+v, want %+v", r.Stats(), ix.Stats)
	}
	assertSamePostings(t, ix, r)
}

// TestRoundTripMultiBlock forces many small blocks so block packing,
// offset derivation and the per-block CRCs are all exercised, and checks
// that misses and (with a tiny shared cache) evictions behave.
func TestRoundTripMultiBlock(t *testing.T) {
	ix := bigIndex(t)
	path := writeTemp(t, ix, WriterOptions{BlockSize: 1 << 10})
	cache := NewBlockCache(4 << 10)
	r, err := OpenFile(path, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumBlocks() < 8 {
		t.Fatalf("only %d blocks with a 1 KiB block size; corpus too small to test packing", r.NumBlocks())
	}
	assertSamePostings(t, ix, r)
	assertSamePostings(t, ix, r) // second pass hits + refetches after eviction
	if cache.Bytes() > 4<<10 {
		t.Fatalf("cache resident bytes %d exceed capacity", cache.Bytes())
	}
	if r.BlockReads() <= int64(r.NumBlocks()) {
		t.Fatalf("block reads %d <= %d blocks: eviction never forced a refetch", r.BlockReads(), r.NumBlocks())
	}
	r.Close()
	if cache.Len() != 0 {
		t.Fatalf("cache still holds %d blocks after the only reader closed", cache.Len())
	}
}

// TestStatsWithoutBlockReads is the satellite regression: both ReadStats
// and a full Open answer stats and the term directory without touching a
// single posting block — proven by corrupting every block body on disk
// and observing no error until a posting list is actually requested.
func TestStatsWithoutBlockReads(t *testing.T) {
	ix := bigIndex(t)
	path := writeTemp(t, ix, WriterOptions{BlockSize: 2 << 10})

	r0, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := r0.NumBlocks()
	start, end := r0.blocks[0].off, r0.blocks[blocks-1].off+r0.blocks[blocks-1].cLen
	r0.Close()

	// Trash every posting block byte. Footer, meta and trailer stay intact.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := start; i < end; i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := ReadStats(path)
	if err != nil {
		t.Fatalf("ReadStats over trashed blocks: %v", err)
	}
	if st != ix.Stats {
		t.Fatalf("ReadStats = %+v, want %+v", st, ix.Stats)
	}

	r, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("OpenFile over trashed blocks: %v", err)
	}
	defer r.Close()
	if r.Stats() != ix.Stats {
		t.Fatalf("Stats = %+v, want %+v", r.Stats(), ix.Stats)
	}
	n := 0
	if err := r.ForEachTerm(func(string, int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != r.TermCount() {
		t.Fatalf("ForEachTerm visited %d of %d terms", n, r.TermCount())
	}
	if r.BlockReads() != 0 {
		t.Fatalf("stats/term walk performed %d block reads, want 0", r.BlockReads())
	}
	// Actually touching a list must now surface the damage as ErrCorrupt.
	var term string
	r.ForEachTerm(func(tm string, _ int) error { term = tm; return errStop })
	if _, err := r.Postings(term); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Postings over a trashed block: err = %v, want ErrCorrupt", err)
	}
}

var errStop = errors.New("stop")

// TestOpenTruncationSweep truncates a valid segment at every byte
// boundary: every prefix must fail OpenFile with a typed ErrCorrupt that
// names the file — never a panic, never a silent success.
func TestOpenTruncationSweep(t *testing.T) {
	ix := tinyIndex(t)
	path := writeTemp(t, ix, WriterOptions{BlockSize: 256})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	trunc := filepath.Join(dir, "trunc.gks4")
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(trunc, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenFile(trunc, Options{})
		if err == nil {
			r.Close()
			t.Fatalf("OpenFile succeeded on a %d/%d-byte prefix", n, len(raw))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: err = %v, want ErrCorrupt", n, err)
		}
		if !containsPath(err, trunc) {
			t.Fatalf("prefix %d: error %q does not name the file", n, err)
		}
	}
}

func containsPath(err error, path string) bool {
	return err != nil && len(err.Error()) > 0 && (stringContains(err.Error(), path))
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSharedCacheAcrossReaders opens the same file twice against one
// cache (the hot-reload shape) and checks the readers never serve each
// other's entries and release only their own on Close.
func TestSharedCacheAcrossReaders(t *testing.T) {
	ix := tinyIndex(t)
	path := writeTemp(t, ix, WriterOptions{BlockSize: 256})
	cache := NewBlockCache(1 << 20)
	r1, err := OpenFile(path, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenFile(path, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	assertSamePostings(t, ix, r1)
	assertSamePostings(t, ix, r2)
	if r1.BlockReads() == 0 || r2.BlockReads() == 0 {
		t.Fatal("one reader served zero disk reads: cache entries leaked across reader identities")
	}
	before := cache.Len()
	if before == 0 {
		t.Fatal("nothing cached")
	}
	r1.Close()
	if after := cache.Len(); after >= before || after == 0 {
		t.Fatalf("cache len after closing one of two readers = %d (was %d)", after, before)
	}
	r2.Close()
	if cache.Len() != 0 {
		t.Fatalf("cache len after closing both readers = %d, want 0", cache.Len())
	}
}

// TestPostingsAfterClose must fail cleanly, not as corruption and not as
// a use-after-close crash.
func TestPostingsAfterClose(t *testing.T) {
	ix := tinyIndex(t)
	path := writeTemp(t, ix, WriterOptions{})
	r, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var term string
	r.ForEachTerm(func(tm string, _ int) error { term = tm; return errStop })
	r.Close()
	if _, err := r.Postings(term); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("Postings after Close: err = %v, want a plain closed error", err)
	}
}

func TestIsSegmentFile(t *testing.T) {
	ix := tinyIndex(t)
	g4 := writeTemp(t, ix, WriterOptions{})
	g3 := filepath.Join(t.TempDir(), "ix.gksidx")
	if err := ix.SaveFile(g3); err != nil {
		t.Fatal(err)
	}
	if !IsSegmentFile(g4) {
		t.Error("IsSegmentFile(gks4) = false")
	}
	if IsSegmentFile(g3) {
		t.Error("IsSegmentFile(gks3) = true")
	}
	if IsSegmentFile(filepath.Join(t.TempDir(), "missing")) {
		t.Error("IsSegmentFile(missing) = true")
	}
}

// TestLazySaveSnapshotEquals checks the leader-snapshot path: streaming a
// GKS3 snapshot out of a lazily opened segment produces the same bytes as
// saving the original resident index.
func TestLazySaveSnapshotEquals(t *testing.T) {
	ix := bigIndex(t)
	path := writeTemp(t, ix, WriterOptions{BlockSize: 2 << 10})
	r, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dir := t.TempDir()
	fromEager := filepath.Join(dir, "eager.gksidx")
	fromLazy := filepath.Join(dir, "lazy.gksidx")
	// The segment writer packs the node table by default, so the lazy index
	// snapshots in the packed encoding; packing is deterministic, so the
	// eager index packs to the same bytes.
	if err := ix.Pack().SaveFile(fromEager); err != nil {
		t.Fatal(err)
	}
	if err := r.Index().SaveFile(fromLazy); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(fromEager)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(fromLazy)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("GKS3 snapshot streamed from a lazy segment differs from the eager one")
	}
}
