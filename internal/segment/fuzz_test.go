package segment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// FuzzLoadSegment feeds arbitrary byte images through the full open path:
// OpenFile, the term directory walk and every posting fetch. The contract
// under fuzzing is absolute — a damaged or adversarial image either fails
// with the typed ErrCorrupt or yields postings that pass the reader's own
// validity re-check; it never panics, never over-allocates on a lying
// length field, and never returns out-of-range ordinals.
func FuzzLoadSegment(f *testing.F) {
	ix, err := index.BuildDocument(xmltree.BuildFigure2a(), index.DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.gks4")
	// Both meta variants are seeded: the default packed node table and the
	// flat v2 encoding (FlatNodes), at several block sizes.
	for _, opts := range []WriterOptions{
		{}, {BlockSize: 256}, {BlockSize: 64}, {FlatNodes: true}, {BlockSize: 256, FlatNodes: true},
	} {
		if err := WriteFileOpts(seedPath, ix, opts); err != nil {
			f.Fatal(err)
		}
		good, err := os.ReadFile(seedPath)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(good)
		// Seed targeted damage so the fuzzer starts at the interesting
		// boundaries: bit flips in the trailer, the footer and the first
		// posting block, plus truncations.
		for _, off := range []int{len(good) - 1, len(good) - 5, len(good) - 12, len(good) / 2, 5, len(good) - 40} {
			if off < 0 || off >= len(good) {
				continue
			}
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			f.Add(bad)
		}
		f.Add(good[:len(good)/2])
		f.Add(good[:len(good)-1])
	}
	f.Add([]byte("GKS4"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.gks4")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := OpenFile(path, Options{CacheBytes: 1 << 12})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenFile: non-corrupt error %v", err)
			}
			return
		}
		defer r.Close()
		st := r.Stats()
		_ = st
		nNodes := int32(r.Index().NodeCount())
		walkErr := r.ForEachTerm(func(term string, count int) error {
			list, err := r.Postings(term)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					return err
				}
				return nil
			}
			prev := int32(-1)
			for _, ord := range list {
				if ord <= prev || ord >= nNodes {
					t.Fatalf("Postings(%q) returned invalid ordinal %d (prev %d, nNodes %d)", term, ord, prev, nNodes)
				}
				prev = ord
			}
			return nil
		})
		if walkErr != nil && !errors.Is(walkErr, ErrCorrupt) {
			t.Fatalf("term walk: non-corrupt error %v", walkErr)
		}
	})
}
