// Package merge implements the merged keyword-instance list S_L of the GKS
// search algorithm (Agarwal et al., EDBT 2016, §4.1) together with the
// sliding-window block scan and range keyword-mask queries that both the
// GKS engine and the LCA baselines are built on.
//
// Posting lists store node *ordinals* (indices into the index's pre-order
// node table). Because pre-order equals Dewey order, merging by ordinal
// yields the paper's Dewey-sorted list S_L, and the subtree of any node is a
// contiguous ordinal interval.
package merge

import (
	"container/heap"
	"context"
	"math/bits"
	"sort"
)

// MaxKeywords bounds the number of query keywords; keyword sets are tracked
// as 64-bit masks.
const MaxKeywords = 64

// Entry is one element of the merged list S_L: a keyword instance located at
// a node.
type Entry struct {
	// Ord is the pre-order ordinal of the node carrying the instance.
	Ord int32
	// Kw is the query-keyword number (index into the query's keyword list).
	Kw uint8
}

// Mask returns the keyword bit mask of the entry.
func (e Entry) Mask() uint64 { return 1 << e.Kw }

// Merge performs a k-way merge of the per-keyword posting lists into S_L.
// Each input list must be sorted ascending; the output is sorted by ordinal
// with ties broken by keyword number. The merge runs in O(|S_L|·log k),
// matching the paper's complexity analysis (§4.1).
func Merge(lists [][]int32) []Entry {
	out, _ := MergeCtx(context.Background(), lists)
	return out
}

// ctxCheckInterval is how many merged entries are produced between
// cancellation checks. A power of two so the check compiles to a mask; at
// 4096 entries the overhead is unmeasurable while a cancelled merge over a
// multi-million-entry S_L stops within microseconds.
const ctxCheckInterval = 1 << 12

// MergeCtx is Merge honoring ctx: the merge loop polls ctx.Done() every
// ctxCheckInterval output entries and returns ctx.Err() early, so a
// timed-out search stops consuming CPU mid-merge instead of completing a
// doomed S_L. On cancellation the partial output is discarded (nil).
func MergeCtx(ctx context.Context, lists [][]int32) ([]Entry, error) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Entry, 0, total)
	h := make(mergeHeap, 0, len(lists))
	for kw, l := range lists {
		if len(l) > 0 {
			h = append(h, cursor{list: l, kw: uint8(kw)})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		if len(out)&(ctxCheckInterval-1) == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c := &h[0]
		out = append(out, Entry{Ord: c.list[c.pos], Kw: c.kw})
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out, nil
}

type cursor struct {
	list []int32
	pos  int
	kw   uint8
}

type mergeHeap []cursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].list[h[i].pos], h[j].list[h[j].pos]
	if a != b {
		return a < b
	}
	return h[i].kw < h[j].kw
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(cursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Windows slides the paper's block over sl (Figure 5): for every left end l
// it finds the smallest right end r such that sl[l..r] holds s unique
// keywords (the sU(l,r,s) predicate) and calls emit(l, r). Blocks are
// emitted in increasing l; the scan is O(|S_L|) amortized.
func Windows(sl []Entry, s int, emit func(l, r int)) {
	if s <= 0 || len(sl) == 0 {
		return
	}
	var counts [MaxKeywords]int
	distinct := 0
	r := -1
	for l := 0; l < len(sl); l++ {
		for distinct < s && r+1 < len(sl) {
			r++
			counts[sl[r].Kw]++
			if counts[sl[r].Kw] == 1 {
				distinct++
			}
		}
		if distinct < s {
			return // no block with s unique keywords starts at or after l
		}
		emit(l, r)
		counts[sl[l].Kw]--
		if counts[sl[l].Kw] == 0 {
			distinct--
		}
	}
}

// MaskTable answers OR-of-keyword-masks queries over ranges of S_L in O(1)
// after O(|S_L|·log|S_L|) preprocessing (a sparse table; OR is idempotent).
// The search engine computes candidate masks with a cheaper single stack
// sweep (candidates' subtree ranges nest); the table remains the
// general-purpose primitive for ad-hoc range queries and serves as the
// differential-testing oracle for the sweep.
type MaskTable struct {
	sl     []Entry
	levels [][]uint64
}

// NewMaskTable builds the table for sl.
func NewMaskTable(sl []Entry) *MaskTable {
	n := len(sl)
	t := &MaskTable{sl: sl}
	if n == 0 {
		return t
	}
	base := make([]uint64, n)
	for i, e := range sl {
		base[i] = e.Mask()
	}
	t.levels = append(t.levels, base)
	for width := 2; width <= n; width *= 2 {
		prev := t.levels[len(t.levels)-1]
		cur := make([]uint64, n-width+1)
		for i := range cur {
			cur[i] = prev[i] | prev[i+width/2]
		}
		t.levels = append(t.levels, cur)
	}
	return t
}

// RangeMask returns the OR of the keyword masks of sl[i:j].
func (t *MaskTable) RangeMask(i, j int) uint64 {
	if i >= j {
		return 0
	}
	k := bits.Len(uint(j-i)) - 1
	return t.levels[k][i] | t.levels[k][j-(1<<k)]
}

// OrdRange locates the index interval of S_L whose entries lie in the node
// ordinal interval [start, end) — the subtree range of a candidate node.
func OrdRange(sl []Entry, start, end int32) (lo, hi int) {
	lo = sort.Search(len(sl), func(i int) bool { return sl[i].Ord >= start })
	hi = sort.Search(len(sl), func(i int) bool { return sl[i].Ord >= end })
	return lo, hi
}

// SubtreeMask returns the distinct-keyword mask of the node interval
// [start, end).
func (t *MaskTable) SubtreeMask(start, end int32) uint64 {
	lo, hi := OrdRange(t.sl, start, end)
	return t.RangeMask(lo, hi)
}

// CountDistinct returns the number of set bits in mask.
func CountDistinct(mask uint64) int { return bits.OnesCount64(mask) }
