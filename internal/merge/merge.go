// Package merge implements the merged keyword-instance list S_L of the GKS
// search algorithm (Agarwal et al., EDBT 2016, §4.1) together with the
// sliding-window block scan and range keyword-mask queries that both the
// GKS engine and the LCA baselines are built on.
//
// Posting lists store node *ordinals* (indices into the index's pre-order
// node table). Because pre-order equals Dewey order, merging by ordinal
// yields the paper's Dewey-sorted list S_L, and the subtree of any node is a
// contiguous ordinal interval.
//
// The k-way merge is a loser tree over concrete cursors: compared to a
// container/heap it performs exactly ⌈log₂ k⌉ comparisons per output entry
// (a binary heap's sift-down costs up to 2·log₂ k) and never boxes cursors
// through interface{}. One- and two-list inputs skip the tree entirely — a
// straight copy and a galloping two-pointer merge. MergeHeap retains the
// original container/heap implementation as the differential-testing oracle
// and benchmark baseline.
package merge

import (
	"container/heap"
	"context"
	"math"
	"math/bits"
	"sort"
)

// MaxKeywords bounds the number of query keywords; keyword sets are tracked
// as 64-bit masks.
const MaxKeywords = 64

// Entry is one element of the merged list S_L: a keyword instance located at
// a node.
type Entry struct {
	// Ord is the pre-order ordinal of the node carrying the instance.
	Ord int32
	// Kw is the query-keyword number (index into the query's keyword list).
	Kw uint8
}

// Mask returns the keyword bit mask of the entry.
func (e Entry) Mask() uint64 { return 1 << e.Kw }

// Merge performs a k-way merge of the per-keyword posting lists into S_L.
// Each input list must be sorted ascending; the output is sorted by ordinal
// with ties broken by keyword number. The merge runs in O(|S_L|·log k),
// matching the paper's complexity analysis (§4.1).
func Merge(lists [][]int32) []Entry {
	out, _ := MergeCtx(context.Background(), lists)
	return out
}

// MergeCtx is Merge honoring ctx: the merge loop polls ctx.Done() every
// ctxCheckInterval output entries and returns ctx.Err() early, so a
// timed-out search stops consuming CPU mid-merge instead of completing a
// doomed S_L. On cancellation the partial output is discarded (nil).
func MergeCtx(ctx context.Context, lists [][]int32) ([]Entry, error) {
	return MergeInto(ctx, lists, nil)
}

// ctxCheckInterval is how many merged entries are produced between
// cancellation checks. A power of two so the check compiles to a mask; at
// 4096 entries the overhead is unmeasurable while a cancelled merge over a
// multi-million-entry S_L stops within microseconds.
const ctxCheckInterval = 1 << 12

// MergeInto is MergeCtx writing into buf's storage: the output reuses
// buf[:0] when its capacity suffices, so a caller holding a per-query
// scratch buffer (the engine's query arena) merges allocation-free in the
// steady state. The returned slice aliases buf (or a larger replacement);
// buf's previous contents are discarded.
func MergeInto(ctx context.Context, lists [][]int32, buf []Entry) ([]Entry, error) {
	total, nonEmpty := 0, 0
	first, last := -1, -1
	for kw, l := range lists {
		if len(l) > 0 {
			total += len(l)
			nonEmpty++
			if first < 0 {
				first = kw
			}
			last = kw
		}
	}
	out := buf[:0]
	if cap(out) < total {
		out = make([]Entry, 0, total)
	}
	switch nonEmpty {
	case 0:
		return out, ctx.Err()
	case 1:
		// Single-list fast path: S_L is the one posting list verbatim.
		kw := uint8(last)
		for _, ord := range lists[last] {
			out = append(out, Entry{Ord: ord, Kw: kw})
		}
		return out, ctx.Err()
	case 2:
		return mergeTwo(ctx, lists[first], lists[last], uint8(first), uint8(last), out)
	}
	return mergeLoserTree(ctx, lists, out, nonEmpty)
}

// mergeTwo merges exactly two non-empty sorted lists with galloping: runs
// of consecutive entries from one list (common when posting lists cluster
// by document) are located with exponential + binary search and copied
// without per-entry comparisons. ka < kb, so ties on ordinal emit a first.
func mergeTwo(ctx context.Context, a, b []int32, ka, kb uint8, out []Entry) ([]Entry, error) {
	i, j := 0, 0
	// Runs are appended in bulk, so poll on a watermark rather than an exact
	// multiple of the interval (which bulk growth could step over).
	next := ctxCheckInterval
	for i < len(a) && j < len(b) {
		if len(out) >= next {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			next = len(out) + ctxCheckInterval
		}
		if a[i] <= b[j] {
			// Take the whole run a[i:e] with a[x] <= b[j].
			e := gallop(a, i, b[j], true)
			for ; i < e; i++ {
				out = append(out, Entry{Ord: a[i], Kw: ka})
			}
		} else {
			// Take the whole run b[j:e] with b[x] < a[i] (ties go to a).
			e := gallop(b, j, a[i], false)
			for ; j < e; j++ {
				out = append(out, Entry{Ord: b[j], Kw: kb})
			}
		}
	}
	for ; i < len(a); i++ {
		out = append(out, Entry{Ord: a[i], Kw: ka})
	}
	for ; j < len(b); j++ {
		out = append(out, Entry{Ord: b[j], Kw: kb})
	}
	return out, ctx.Err()
}

// gallop returns the end (exclusive) of the maximal run starting at
// list[from] whose values are <= bound (inclusive) or < bound (exclusive):
// an exponential probe brackets the boundary, a binary search pins it —
// O(log run) comparisons instead of O(run).
func gallop(list []int32, from int, bound int32, inclusive bool) int {
	within := func(v int32) bool {
		if inclusive {
			return v <= bound
		}
		return v < bound
	}
	// Exponential probe: find hi with list[hi] outside the run.
	step := 1
	lo := from // list[lo] is known within the run (caller checked)
	hi := from + step
	for hi < len(list) && within(list[hi]) {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > len(list) {
		hi = len(list)
	}
	// Binary search in (lo, hi] for the first value outside the run.
	return lo + 1 + sort.Search(hi-lo-1, func(k int) bool {
		return !within(list[lo+1+k])
	})
}

// loserKey packs a cursor's current (ordinal, keyword) pair into one int64
// so a tree round is a single integer comparison. Ordinals are non-negative
// and keyword numbers are < 64, so (ord << 8) | kw preserves the S_L order
// (ordinal ascending, keyword ascending on ties). Exhausted cursors take
// math.MaxInt64 and sink to the bottom of the tree.
func loserKey(ord int32, kw uint8) int64 { return int64(ord)<<8 | int64(kw) }

const exhaustedKey = int64(math.MaxInt64)

// loserCursor walks one posting list during the loser-tree merge.
type loserCursor struct {
	list []int32
	pos  int
	kw   uint8
}

// mergeLoserTree runs the k-way merge (k >= 3) on a loser tree: leaves are
// list cursors, each internal node remembers the loser of the match played
// there, and the overall winner is re-seated with one root-to-leaf replay of
// exactly ⌈log₂ k⌉ comparisons per emitted entry. Queries carry at most
// MaxKeywords lists, so all tree state lives in fixed-size stack arrays and
// the merge itself is allocation-free.
func mergeLoserTree(ctx context.Context, lists [][]int32, out []Entry, nonEmpty int) ([]Entry, error) {
	if nonEmpty > MaxKeywords {
		// Out-of-contract input (keyword masks are 64-bit anyway); serve it
		// through the reference merge rather than overrun the stack arrays.
		return append(out, MergeHeap(lists)...), ctx.Err()
	}
	var cursors [MaxKeywords]loserCursor
	nc := 0
	for kw, l := range lists {
		if len(l) > 0 {
			cursors[nc] = loserCursor{list: l, kw: uint8(kw)}
			nc++
		}
	}
	// Pad the leaf count to a power of two so the replay path is a pure
	// halving walk; padding leaves are permanently exhausted.
	p := 1
	for p < nc {
		p <<= 1
	}
	var keys [MaxKeywords]int64
	for i := 0; i < p; i++ {
		if i < nc {
			keys[i] = loserKey(cursors[i].list[0], cursors[i].kw)
		} else {
			keys[i] = exhaustedKey
		}
	}
	// Build: play every match bottom-up; win[] is transient, loser[] keeps
	// the loser seated at each internal node.
	var loser [MaxKeywords]int
	var win [2 * MaxKeywords]int
	for i := 0; i < p; i++ {
		win[p+i] = i
	}
	for n := p - 1; n >= 1; n-- {
		a, b := win[2*n], win[2*n+1]
		if keys[a] <= keys[b] {
			win[n], loser[n] = a, b
		} else {
			win[n], loser[n] = b, a
		}
	}
	winner := win[1]

	for keys[winner] != exhaustedKey {
		if len(out)&(ctxCheckInterval-1) == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c := &cursors[winner]
		out = append(out, Entry{Ord: c.list[c.pos], Kw: c.kw})
		c.pos++
		if c.pos == len(c.list) {
			keys[winner] = exhaustedKey
		} else {
			keys[winner] = loserKey(c.list[c.pos], c.kw)
		}
		// Replay the winner's path: at each node the smaller key advances,
		// the larger stays seated as the loser.
		for n := (p + winner) >> 1; n >= 1; n >>= 1 {
			if keys[loser[n]] < keys[winner] {
				loser[n], winner = winner, loser[n]
			}
		}
	}
	return out, nil
}

// MergeHeap is the original container/heap k-way merge, retained verbatim
// as the differential-testing oracle for the loser tree and as the baseline
// of the query-hot-path benchmarks. Output is identical to Merge.
func MergeHeap(lists [][]int32) []Entry {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Entry, 0, total)
	h := make(mergeHeap, 0, len(lists))
	for kw, l := range lists {
		if len(l) > 0 {
			h = append(h, heapCursor{list: l, kw: uint8(kw)})
		}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := &h[0]
		out = append(out, Entry{Ord: c.list[c.pos], Kw: c.kw})
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

type heapCursor struct {
	list []int32
	pos  int
	kw   uint8
}

type mergeHeap []heapCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].list[h[i].pos], h[j].list[h[j].pos]
	if a != b {
		return a < b
	}
	return h[i].kw < h[j].kw
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(heapCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Windows slides the paper's block over sl (Figure 5): for every left end l
// it finds the smallest right end r such that sl[l..r] holds s unique
// keywords (the sU(l,r,s) predicate) and calls emit(l, r). Blocks are
// emitted in increasing l; the scan is O(|S_L|) amortized.
func Windows(sl []Entry, s int, emit func(l, r int)) {
	if s <= 0 || len(sl) == 0 {
		return
	}
	var counts [MaxKeywords]int
	distinct := 0
	r := -1
	for l := 0; l < len(sl); l++ {
		for distinct < s && r+1 < len(sl) {
			r++
			counts[sl[r].Kw]++
			if counts[sl[r].Kw] == 1 {
				distinct++
			}
		}
		if distinct < s {
			return // no block with s unique keywords starts at or after l
		}
		emit(l, r)
		counts[sl[l].Kw]--
		if counts[sl[l].Kw] == 0 {
			distinct--
		}
	}
}

// MaskTable answers OR-of-keyword-masks queries over ranges of S_L in O(1)
// after O(|S_L|·log|S_L|) preprocessing (a sparse table; OR is idempotent).
// The search engine computes candidate masks with a cheaper single stack
// sweep (candidates' subtree ranges nest); the table remains the
// general-purpose primitive for ad-hoc range queries and serves as the
// differential-testing oracle for the sweep.
type MaskTable struct {
	sl     []Entry
	levels [][]uint64
}

// NewMaskTable builds the table for sl.
func NewMaskTable(sl []Entry) *MaskTable {
	n := len(sl)
	t := &MaskTable{sl: sl}
	if n == 0 {
		return t
	}
	base := make([]uint64, n)
	for i, e := range sl {
		base[i] = e.Mask()
	}
	t.levels = append(t.levels, base)
	for width := 2; width <= n; width *= 2 {
		prev := t.levels[len(t.levels)-1]
		cur := make([]uint64, n-width+1)
		for i := range cur {
			cur[i] = prev[i] | prev[i+width/2]
		}
		t.levels = append(t.levels, cur)
	}
	return t
}

// RangeMask returns the OR of the keyword masks of sl[i:j].
func (t *MaskTable) RangeMask(i, j int) uint64 {
	if i >= j {
		return 0
	}
	k := bits.Len(uint(j-i)) - 1
	return t.levels[k][i] | t.levels[k][j-(1<<k)]
}

// OrdRange locates the index interval of S_L whose entries lie in the node
// ordinal interval [start, end) — the subtree range of a candidate node.
func OrdRange(sl []Entry, start, end int32) (lo, hi int) {
	lo = sort.Search(len(sl), func(i int) bool { return sl[i].Ord >= start })
	hi = sort.Search(len(sl), func(i int) bool { return sl[i].Ord >= end })
	return lo, hi
}

// SubtreeMask returns the distinct-keyword mask of the node interval
// [start, end).
func (t *MaskTable) SubtreeMask(start, end int32) uint64 {
	lo, hi := OrdRange(t.sl, start, end)
	return t.RangeMask(lo, hi)
}

// CountDistinct returns the number of set bits in mask.
func CountDistinct(mask uint64) int { return bits.OnesCount64(mask) }
