package merge

import (
	"context"
	"math/rand"
	"testing"
)

// randomLists builds k sorted, deduped posting lists with geometric-ish
// gaps; emptyEvery > 0 makes every emptyEvery-th list empty to exercise the
// non-empty-list dispatch in MergeInto.
func randomLists(rng *rand.Rand, k, maxLen, emptyEvery int) [][]int32 {
	lists := make([][]int32, k)
	for i := range lists {
		if emptyEvery > 0 && i%emptyEvery == 0 {
			lists[i] = nil
			continue
		}
		n := rng.Intn(maxLen + 1)
		cur := int32(rng.Intn(4))
		l := make([]int32, 0, n)
		for j := 0; j < n; j++ {
			l = append(l, cur)
			cur += int32(1 + rng.Intn(7))
		}
		lists[i] = l
	}
	return lists
}

// TestMergeMatchesHeap is the differential oracle: the loser tree (and its
// one- and two-list fast paths) must produce output identical to the
// original container/heap merge across random list shapes.
func TestMergeMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(17) // 0..16 lists: hits empty, single, two-list, and tree paths
		emptyEvery := 0
		if trial%3 == 0 {
			emptyEvery = 1 + rng.Intn(3)
		}
		lists := randomLists(rng, k, 60, emptyEvery)
		want := MergeHeap(lists)
		got := Merge(lists)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): len = %d, want %d", trial, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d): entry %d = %v, want %v", trial, k, i, got[i], want[i])
			}
		}
	}
}

// TestMergeSharedOrdinals pins tie-breaking: when several lists contain the
// same ordinal, entries must come out in keyword order.
func TestMergeSharedOrdinals(t *testing.T) {
	shared := []int32{3, 7, 7, 9} // note: lists are normally deduped, but the merge must not rely on it
	lists := [][]int32{shared, {1, 7, 12}, nil, shared, {7}}
	want := MergeHeap(lists)
	got := Merge(lists)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMergeIntoReusesBuffer proves the steady-state merge is
// allocation-free once the caller's buffer has grown to fit.
func TestMergeIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 5, 9} {
		lists := randomLists(rng, k, 200, 0)
		buf, err := MergeInto(context.Background(), lists, nil)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			out, err := MergeInto(context.Background(), lists, buf)
			if err != nil {
				t.Fatal(err)
			}
			buf = out
		})
		if allocs != 0 {
			t.Errorf("k=%d: MergeInto with warm buffer allocated %.0f times per run", k, allocs)
		}
	}
}

// TestMergeCtxCancelled checks every dispatch path observes a
// pre-cancelled context.
func TestMergeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{2, 8} {
		// Long lists so the cancellation watermark is crossed mid-merge.
		lists := randomLists(rng, k, 3*ctxCheckInterval, 0)
		if _, err := MergeCtx(ctx, lists); err != context.Canceled {
			t.Errorf("k=%d: err = %v, want context.Canceled", k, err)
		}
	}
}

// TestGallop pins the probe/binary-search boundary arithmetic.
func TestGallop(t *testing.T) {
	list := []int32{1, 2, 2, 3, 5, 8, 8, 8, 13, 21}
	cases := []struct {
		from      int
		bound     int32
		inclusive bool
		want      int
	}{
		{0, 2, true, 3},    // run of values <= 2
		{0, 2, false, 1},   // values < 2
		{4, 8, true, 8},    // all the 8s
		{4, 8, false, 5},   // just the 5
		{0, 100, true, 10}, // whole list
		{9, 21, true, 10},  // last element only
	}
	for _, c := range cases {
		if got := gallop(list, c.from, c.bound, c.inclusive); got != c.want {
			t.Errorf("gallop(from=%d, bound=%d, inclusive=%v) = %d, want %d",
				c.from, c.bound, c.inclusive, got, c.want)
		}
	}
}

func BenchmarkMergeLoserTree(b *testing.B) {
	lists := synthLists(8, 5000)
	var buf []Entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := MergeInto(context.Background(), lists, buf)
		if err != nil || len(out) != 40000 {
			b.Fatal("bad merge")
		}
		buf = out
	}
}

func BenchmarkMergeHeapBaseline(b *testing.B) {
	lists := synthLists(8, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := MergeHeap(lists); len(got) != 40000 {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkMergeTwoGalloping(b *testing.B) {
	lists := synthLists(2, 20000)
	var buf []Entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := MergeInto(context.Background(), lists, buf)
		if err != nil || len(out) != 40000 {
			b.Fatal("bad merge")
		}
		buf = out
	}
}
