package merge

import (
	"math/rand"
	"testing"
)

func synthLists(k, perList int) [][]int32 {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]int32, k)
	for i := range lists {
		cur := int32(0)
		l := make([]int32, perList)
		for j := range l {
			cur += int32(1 + rng.Intn(20))
			l[j] = cur
		}
		lists[i] = l
	}
	return lists
}

func BenchmarkMerge(b *testing.B) {
	lists := synthLists(8, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Merge(lists); len(got) != 40000 {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkWindows(b *testing.B) {
	sl := Merge(synthLists(8, 5000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		Windows(sl, 4, func(l, r int) { count++ })
		if count == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkMaskTableBuildAndQuery(b *testing.B) {
	sl := Merge(synthLists(8, 5000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mt := NewMaskTable(sl)
		if mt.RangeMask(0, len(sl)) == 0 {
			b.Fatal("empty mask")
		}
	}
}
