package merge

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMergeBasic(t *testing.T) {
	lists := [][]int32{
		{1, 5, 9},
		{2, 5, 7},
		{},
		{3},
	}
	sl := Merge(lists)
	want := []Entry{{1, 0}, {2, 1}, {3, 3}, {5, 0}, {5, 1}, {7, 1}, {9, 0}}
	if len(sl) != len(want) {
		t.Fatalf("len = %d, want %d", len(sl), len(want))
	}
	for i := range want {
		if sl[i] != want[i] {
			t.Errorf("sl[%d] = %v, want %v", i, sl[i], want[i])
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Errorf("Merge(nil) = %v", got)
	}
	if got := Merge([][]int32{{}, {}}); len(got) != 0 {
		t.Errorf("Merge(empties) = %v", got)
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		lists := make([][]int32, k)
		total := 0
		for i := range lists {
			n := rng.Intn(30)
			l := make([]int32, n)
			for j := range l {
				l[j] = int32(rng.Intn(100))
			}
			sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
			// Posting lists are deduped per node.
			l = dedup(l)
			lists[i] = l
			total += len(l)
		}
		sl := Merge(lists)
		if len(sl) != total {
			return false
		}
		for i := 1; i < len(sl); i++ {
			if sl[i-1].Ord > sl[i].Ord {
				return false
			}
			if sl[i-1].Ord == sl[i].Ord && sl[i-1].Kw >= sl[i].Kw {
				return false
			}
		}
		// Every input element must appear with its keyword.
		for kw, l := range lists {
			for _, ord := range l {
				found := false
				for _, e := range sl {
					if e.Ord == ord && int(e.Kw) == kw {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func dedup(l []int32) []int32 {
	out := l[:0]
	for i, v := range l {
		if i == 0 || v != l[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func TestWindows(t *testing.T) {
	sl := []Entry{{1, 0}, {2, 0}, {3, 1}, {4, 0}, {5, 2}, {6, 1}}
	type block struct{ l, r int }
	var got []block
	Windows(sl, 2, func(l, r int) { got = append(got, block{l, r}) })
	want := []block{{0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("blocks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("block[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWindowsUniqueSemantics(t *testing.T) {
	// Repeated keyword 0 must not satisfy s=2 until keyword 1 arrives.
	sl := []Entry{{1, 0}, {2, 0}, {3, 0}, {9, 1}}
	var rs []int
	Windows(sl, 2, func(l, r int) { rs = append(rs, r) })
	for _, r := range rs {
		if r != 3 {
			t.Errorf("window closed at %d, want 3 (first unique pair)", r)
		}
	}
	if len(rs) != 3 {
		t.Errorf("got %d blocks, want 3", len(rs))
	}
}

func TestWindowsS1(t *testing.T) {
	sl := []Entry{{1, 0}, {5, 1}}
	count := 0
	Windows(sl, 1, func(l, r int) {
		if l != r {
			t.Errorf("s=1 block [%d,%d] should be singleton", l, r)
		}
		count++
	})
	if count != 2 {
		t.Errorf("blocks = %d, want 2", count)
	}
}

func TestWindowsInfeasible(t *testing.T) {
	sl := []Entry{{1, 0}, {2, 0}}
	called := false
	Windows(sl, 2, func(l, r int) { called = true })
	if called {
		t.Error("no block should be emitted when fewer than s distinct keywords exist")
	}
	Windows(nil, 1, func(l, r int) { t.Error("no blocks on empty list") })
	Windows(sl, 0, func(l, r int) { t.Error("no blocks for s=0") })
}

func TestMaskTable(t *testing.T) {
	sl := []Entry{{1, 0}, {2, 1}, {3, 0}, {7, 2}, {9, 1}}
	mt := NewMaskTable(sl)
	cases := []struct {
		i, j int
		want uint64
	}{
		{0, 5, 0b111},
		{0, 1, 0b001},
		{1, 3, 0b011},
		{3, 4, 0b100},
		{2, 2, 0},
		{4, 5, 0b010},
	}
	for _, c := range cases {
		if got := mt.RangeMask(c.i, c.j); got != c.want {
			t.Errorf("RangeMask(%d,%d) = %b, want %b", c.i, c.j, got, c.want)
		}
	}
}

func TestMaskTableProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		sl := make([]Entry, n)
		prev := int32(0)
		for i := range sl {
			prev += int32(rng.Intn(3))
			sl[i] = Entry{Ord: prev, Kw: uint8(rng.Intn(10))}
		}
		mt := NewMaskTable(sl)
		for q := 0; q < 50; q++ {
			i := rng.Intn(n + 1)
			j := i + rng.Intn(n+1-i)
			var want uint64
			for _, e := range sl[i:j] {
				want |= e.Mask()
			}
			if got := mt.RangeMask(i, j); got != want {
				t.Fatalf("trial %d: RangeMask(%d,%d) = %b, want %b", trial, i, j, got, want)
			}
		}
	}
}

func TestOrdRangeAndSubtreeMask(t *testing.T) {
	sl := []Entry{{1, 0}, {2, 1}, {5, 0}, {5, 2}, {9, 1}}
	lo, hi := OrdRange(sl, 2, 6)
	if lo != 1 || hi != 4 {
		t.Errorf("OrdRange = [%d,%d), want [1,4)", lo, hi)
	}
	mt := NewMaskTable(sl)
	if got := mt.SubtreeMask(2, 6); got != 0b111 {
		t.Errorf("SubtreeMask = %b, want 111", got)
	}
	if got := mt.SubtreeMask(100, 200); got != 0 {
		t.Errorf("empty SubtreeMask = %b, want 0", got)
	}
}

func TestCountDistinct(t *testing.T) {
	if CountDistinct(0) != 0 || CountDistinct(0b1011) != 3 {
		t.Error("CountDistinct wrong")
	}
}

func TestEmptyMaskTable(t *testing.T) {
	mt := NewMaskTable(nil)
	if got := mt.RangeMask(0, 0); got != 0 {
		t.Errorf("empty table mask = %b", got)
	}
}
