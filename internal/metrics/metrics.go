// Package metrics implements the evaluation measures of the paper's §7
// (Agarwal et al., EDBT 2016): the rank score of §7.3, standard precision
// and recall, and the simulated crowd-feedback model substituting for the
// 40-rater study of §7.5 (see DESIGN.md §3).
package metrics

import "math"

// RankScore computes the §7.3 rank score from the 1-based positions of the
// "true" XML nodes (the results carrying the most query keywords) within
// the ranked list. Let w be the lowest (largest) position of a true node;
// each true node at position i weighs w+1-i; the score is the ratio of the
// summed weights w_a to the ideal total w_t = w(w+1)/2. A score of 1 means
// no true node is ranked below a non-true node.
func RankScore(truePositions []int) float64 {
	if len(truePositions) == 0 {
		return 0
	}
	w := 0
	for _, p := range truePositions {
		if p > w {
			w = p
		}
	}
	if w <= 0 {
		return 0
	}
	wa := 0
	for _, p := range truePositions {
		wa += w + 1 - p
	}
	wt := w * (w + 1) / 2
	return float64(wa) / float64(wt)
}

// TruePositions returns the 1-based positions of the results whose keyword
// count equals the maximum — the paper's "true XML nodes".
func TruePositions(keywordCounts []int) []int {
	max := 0
	for _, c := range keywordCounts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return nil
	}
	var out []int
	for i, c := range keywordCounts {
		if c == max {
			out = append(out, i+1)
		}
	}
	return out
}

// PrecisionRecall computes precision and recall of a retrieved set against
// a relevant set; both are reported as 0 when their denominator is 0.
func PrecisionRecall(retrieved, relevant map[int32]bool) (precision, recall float64) {
	if len(retrieved) == 0 || len(relevant) == 0 {
		return 0, 0
	}
	hits := 0
	for r := range retrieved {
		if relevant[r] {
			hits++
		}
	}
	return float64(hits) / float64(len(retrieved)), float64(hits) / float64(len(relevant))
}

// Utility scores a ranked response against a relevant set with a DCG-style
// top-k gain, normalized by the ideal ranking, minus a small noise penalty
// for irrelevant results among the top k. It is the per-response input of
// the feedback simulation.
func Utility(ranked []int32, relevant map[int32]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	gain, noise := 0.0, 0.0
	for i := 0; i < k; i++ {
		if relevant[ranked[i]] {
			gain += 1 / math.Log2(float64(i)+2)
		} else {
			noise++
		}
	}
	ideal := 0.0
	for i := 0; i < len(relevant) && i < k; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	u := gain/ideal - 0.1*noise/float64(k)
	if u < 0 {
		u = 0
	}
	return u
}

// GradedUtility scores a ranked response by graded relevance: grades[i] in
// [0, 1] is the usefulness of the i-th result (for GKS responses, the
// fraction of query keywords the node carries; for LCA baselines, 1 per
// answer node). The gain of the first k slots is discounted DCG-style and
// normalized against a hypothetical list of k perfectly useful results, so
// a response that surfaces *more* partially-relevant information scores
// higher than a single exact hit — the usefulness notion behind the
// paper's §7.5 user preferences.
func GradedUtility(grades []float64, k int) float64 {
	if k <= 0 {
		k = len(grades)
	}
	gain, denom := 0.0, 0.0
	for i := 0; i < k; i++ {
		d := 1 / math.Log2(float64(i)+2)
		denom += d
		if i < len(grades) {
			g := grades[i]
			if g < 0 {
				g = 0
			} else if g > 1 {
				g = 1
			}
			gain += g * d
		}
	}
	if denom == 0 {
		return 0
	}
	return gain / denom
}
