package metrics

import (
	"math"
	"testing"
)

func TestRankScorePerfect(t *testing.T) {
	// All true nodes at the top: score 1 (paper: "Score of 1 means that no
	// true XML node is ranked lower than a XML node which is not true").
	if got := RankScore([]int{1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect score = %v, want 1", got)
	}
	if got := RankScore([]int{1}); got != 1 {
		t.Errorf("single top score = %v, want 1", got)
	}
}

func TestRankScorePenalizesLowTrueNodes(t *testing.T) {
	// True nodes at 1,2,3,4 and one at 10 (the QD2 situation): w=10,
	// wa = 10+9+8+7+1 = 35, wt = 55.
	got := RankScore([]int{1, 2, 3, 4, 10})
	want := 35.0 / 55.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("score = %v, want %v", got, want)
	}
	if RankScore([]int{5}) >= RankScore([]int{2}) {
		t.Error("a lower single true node must score worse")
	}
}

func TestRankScoreEdgeCases(t *testing.T) {
	if got := RankScore(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := RankScore([]int{0}); got != 0 {
		t.Errorf("invalid position = %v", got)
	}
}

func TestTruePositions(t *testing.T) {
	got := TruePositions([]int{3, 2, 3, 1})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("TruePositions = %v, want [1 3]", got)
	}
	if TruePositions(nil) != nil {
		t.Error("empty input must return nil")
	}
	if TruePositions([]int{0, 0}) != nil {
		t.Error("all-zero input must return nil")
	}
}

func TestPrecisionRecall(t *testing.T) {
	retrieved := map[int32]bool{1: true, 2: true, 3: true, 4: true}
	relevant := map[int32]bool{2: true, 3: true}
	p, r := PrecisionRecall(retrieved, relevant)
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-1.0) > 1e-12 {
		t.Errorf("P/R = %v/%v, want 0.5/1.0", p, r)
	}
	p, r = PrecisionRecall(nil, relevant)
	if p != 0 || r != 0 {
		t.Error("empty retrieved must give zeros")
	}
}

func TestUtility(t *testing.T) {
	relevant := map[int32]bool{10: true, 20: true}
	perfect := Utility([]int32{10, 20, 30}, relevant, 2)
	if math.Abs(perfect-1.0) > 1e-12 {
		t.Errorf("perfect top-k utility = %v, want 1", perfect)
	}
	none := Utility([]int32{1, 2, 3}, relevant, 3)
	if none != 0 {
		t.Errorf("all-miss utility = %v, want 0", none)
	}
	mixed := Utility([]int32{10, 99, 20}, relevant, 3)
	if mixed <= none || mixed >= perfect {
		t.Errorf("mixed utility %v should sit between %v and %v", mixed, none, perfect)
	}
	if Utility(nil, nil, 5) != 0 {
		t.Error("no relevant nodes must give 0")
	}
}

func TestFeedbackDeterministicAndSane(t *testing.T) {
	f := Feedback{Raters: 40, Seed: 9}
	a := f.Rate(0.9, 0.1)
	b := f.Rate(0.9, 0.1)
	if a != b {
		t.Error("feedback must be deterministic for a fixed seed")
	}
	if a.Total() != 40 {
		t.Errorf("total = %d, want 40", a.Total())
	}
	// Strong GKS advantage: essentially everyone rates 1 or 2.
	if a.GKSBetter() < 38 {
		t.Errorf("GKS-better = %d/40 with a 0.8 utility gap", a.GKSBetter())
	}
	// Strong SLCA advantage flips the histogram.
	c := f.Rate(0.1, 0.9)
	if c.GKSBetter() > 2 {
		t.Errorf("GKS-better = %d/40 with a -0.8 gap", c.GKSBetter())
	}
	// Near-tie: both sides represented.
	d := f.Rate(0.5, 0.45)
	if d.GKSBetter() == 0 || d.GKSBetter() == 40 {
		t.Errorf("near-tie histogram too extreme: %+v", d)
	}
}

func TestFeedbackDefaultsPanel(t *testing.T) {
	f := Feedback{}
	if got := f.Rate(1, 0).Total(); got != 40 {
		t.Errorf("default panel = %d, want 40", got)
	}
}

func TestGradedUtility(t *testing.T) {
	// Perfect top-k of fully relevant results.
	if got := GradedUtility([]float64{1, 1, 1}, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect = %v", got)
	}
	// Empty response scores 0.
	if got := GradedUtility(nil, 5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Graded results score between 0 and 1; earlier slots weigh more.
	front := GradedUtility([]float64{1, 0.5, 0}, 3)
	back := GradedUtility([]float64{0, 0.5, 1}, 3)
	if front <= back {
		t.Errorf("front-loaded %v should beat back-loaded %v", front, back)
	}
	// Short lists are penalized against the full k slots.
	short := GradedUtility([]float64{1}, 10)
	if short >= 0.5 {
		t.Errorf("single hit over 10 slots = %v, want < 0.5", short)
	}
	// Out-of-range grades are clamped.
	if got := GradedUtility([]float64{5, -3}, 2); got < 0 || got > 1 {
		t.Errorf("clamped = %v", got)
	}
	// k <= 0 uses the list length.
	if got := GradedUtility([]float64{1, 1}, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("k=0 = %v", got)
	}
}
