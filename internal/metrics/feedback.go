package metrics

import "math/rand"

// Feedback simulates the paper's §7.5 crowd study: raters compare the GKS
// response with the SLCA response for a query on a 1–4 scale (1 = "GKS
// very useful" ... 4 = "SLCA very useful"). The paper does not ship its
// raters; the simulation substitutes a deterministic utility-gap model
// with per-rater jitter (DESIGN.md §3): each rater perceives the utility
// difference with independent noise and maps it onto the scale.
type Feedback struct {
	// Raters is the panel size (the paper used 40).
	Raters int
	// Seed makes the panel deterministic.
	Seed int64
}

// Ratings holds the per-query rating histogram: Counts[0] raters chose 1
// ("GKS very useful"), ..., Counts[3] chose 4 ("SLCA very useful").
type Ratings struct {
	Counts [4]int
}

// GKSBetter returns how many raters preferred GKS (rating 1 or 2).
func (r Ratings) GKSBetter() int { return r.Counts[0] + r.Counts[1] }

// Total returns the panel size.
func (r Ratings) Total() int {
	return r.Counts[0] + r.Counts[1] + r.Counts[2] + r.Counts[3]
}

// Rate maps a (GKS utility, SLCA utility) pair onto the rating histogram.
func (f Feedback) Rate(gksUtility, slcaUtility float64) Ratings {
	n := f.Raters
	if n <= 0 {
		n = 40
	}
	rng := rand.New(rand.NewSource(f.Seed))
	var out Ratings
	for i := 0; i < n; i++ {
		perceived := gksUtility - slcaUtility + (rng.Float64()-0.5)*0.4
		switch {
		case perceived > 0.45:
			out.Counts[0]++ // GKS very useful
		case perceived > 0:
			out.Counts[1]++ // GKS better
		case perceived > -0.45:
			out.Counts[2]++ // SLCA better
		default:
			out.Counts[3]++ // SLCA very useful
		}
	}
	return out
}
