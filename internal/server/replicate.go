// Replication glue: how a gksd process becomes a leader or a follower.
//
// The leader side is a snapshot source — a point-in-time serialized
// index plus the LSN it covers, captured under the serving mutex so the
// snapshot and the log position can never disagree, and gated on WAL
// durability so a follower can never install state its leader might
// forget after a crash.
//
// The follower side is an Applier that pushes leader records through
// the SAME two-phase commit path local ingestion uses: build the
// successor copy-on-write, append to the local WAL (asserting the local
// log assigns the leader's LSN — the follower's log is a byte-for-byte
// LSN mirror), swap under the reload mutex, and make batches durable
// with the same group commit. Snapshot installs are guarded by an
// install marker in the WAL directory: boot replay is only correct when
// the log is a contiguous suffix of the snapshot, and a crash between
// "snapshot renamed into place" and "log reset" would violate that.
// The marker makes that window detectable — a booting follower that
// sees it discards local state and re-joins from the leader.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// installMarkerName is the file whose presence in the WAL directory
// means a snapshot install may have been interrupted: the index file
// and the log cannot be trusted to agree, so boot must re-join.
const installMarkerName = "install.pending"

// InstallPending reports whether an interrupted snapshot install left
// the WAL directory's marker behind.
func InstallPending(walDir string) bool {
	_, err := os.Stat(filepath.Join(walDir, installMarkerName))
	return err == nil
}

func writeInstallMarker(walDir string) error {
	f, err := os.Create(filepath.Join(walDir, installMarkerName))
	if err != nil {
		return fmt.Errorf("install marker: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("install marker: %w", err)
	}
	return f.Close()
}

func removeInstallMarker(walDir string) error {
	if err := os.Remove(filepath.Join(walDir, installMarkerName)); err != nil {
		return fmt.Errorf("install marker: %w", err)
	}
	return nil
}

// SnapshotSource serves point-in-time snapshots for joining followers;
// it implements replica.SnapshotSource.
type SnapshotSource struct {
	rl  *Reloader
	wal *wal.Log
}

// ReplicaSource exposes the reloader's serving state as a replication
// snapshot source over l.
func (rl *Reloader) ReplicaSource(l *wal.Log) *SnapshotSource {
	return &SnapshotSource{rl: rl, wal: l}
}

// Snapshot captures (serving system, last LSN) atomically under the
// serving mutex — mutations apply and append under that same mutex, so
// the pair is exact — then waits for the LSN's group-commit fsync
// before handing the snapshot out: a follower may only ever install
// state the leader is guaranteed to remember.
func (s *SnapshotSource) Snapshot() (uint64, io.ReadCloser, error) {
	s.rl.mu.Lock()
	sys := s.rl.h.Searcher()
	lsn := s.wal.LastLSN()
	s.rl.mu.Unlock()
	if err := s.wal.WaitDurable(lsn); err != nil {
		return 0, nil, fmt.Errorf("replica snapshot: durability wait at lsn %d: %w", lsn, err)
	}
	single, ok := sys.(*gks.System)
	if !ok {
		return 0, nil, errors.New("replica snapshot: replication serves single-index deployments only")
	}
	// The captured system is immutable (mutations are copy-on-write), so
	// serializing outside the lock is safe.
	var buf bytes.Buffer
	if err := single.SaveSnapshot(&buf); err != nil {
		return 0, nil, fmt.Errorf("replica snapshot: %w", err)
	}
	return lsn, io.NopCloser(&buf), nil
}

// ReplicaApplier drives follower-side state transitions; it implements
// replica.Applier.
type ReplicaApplier struct {
	rl        *Reloader
	wal       *wal.Log
	indexPath string
	reg       *obs.Registry
	logger    *log.Logger
	onDurable func()

	// staged is the highest leader LSN applied and enqueued (visible to
	// searches, not yet locally durable); applied is the highest LSN
	// whose local fsync landed — the position replication resumes from.
	staged  atomic.Uint64
	applied atomic.Uint64
}

// NewReplicaApplier wires the follower apply path over the reloader's
// serving state. l must already hold the boot-replayed mirror of the
// leader's log; indexPath is where installed snapshots land (the same
// path the checkpointer persists to). reg, logger and onDurable may be
// nil; onDurable runs after every durable batch (the checkpoint
// trigger, same as local ingestion's).
func NewReplicaApplier(rl *Reloader, l *wal.Log, indexPath string, reg *obs.Registry, logger *log.Logger, onDurable func()) *ReplicaApplier {
	a := &ReplicaApplier{rl: rl, wal: l, indexPath: indexPath, reg: reg, logger: logger, onDurable: onDurable}
	lsn := l.LastLSN()
	a.staged.Store(lsn)
	a.applied.Store(lsn)
	return a
}

// AppliedLSN is the locally durable replication position.
func (a *ReplicaApplier) AppliedLSN() uint64 { return a.applied.Load() }

// StagedLSN is the highest leader LSN visible to searches (possibly not
// yet locally durable).
func (a *ReplicaApplier) StagedLSN() uint64 { return a.staged.Load() }

// Apply stages one leader record: copy-on-write successor, local WAL
// enqueue (asserting LSN equality with the leader), swap. Mirrors
// Ingester.commit's ordering exactly; the fsync wait is deferred to
// Sync so batches share flushes.
func (a *ReplicaApplier) Apply(rec wal.Record) error {
	a.rl.mu.Lock()
	defer a.rl.mu.Unlock()
	cur := a.staged.Load()
	if rec.LSN <= cur {
		return nil // duplicate after a reconnect race
	}
	if rec.LSN != cur+1 {
		return fmt.Errorf("replica apply: lsn gap: got %d after %d", rec.LSN, cur)
	}
	sys := a.rl.h.Searcher()
	var next gks.Searcher
	var err error
	switch rec.Op {
	case wal.OpUpsert:
		var doc *gks.Document
		doc, err = gks.ParseDocumentString(rec.Doc, rec.Name)
		if err == nil {
			next, _, err = gks.Upsert(sys, doc)
		}
	case wal.OpDelete:
		next, err = gks.Remove(sys, rec.Name)
	default:
		err = fmt.Errorf("unknown op %d", rec.Op)
	}
	if err != nil {
		// The leader only logs mutations it successfully applied, so a
		// failure here means the mirror has diverged — stop, loudly.
		return fmt.Errorf("replica apply lsn %d (%s): %w", rec.LSN, rec.Name, err)
	}
	lsn, err := a.wal.Enqueue(rec.Op, rec.Name, rec.Doc)
	if err != nil {
		return fmt.Errorf("replica apply lsn %d: local wal: %w", rec.LSN, err)
	}
	if lsn != rec.LSN {
		return fmt.Errorf("replica apply: local wal assigned lsn %d to leader record %d", lsn, rec.LSN)
	}
	gen := a.rl.h.Swap(next)
	st := next.Stats()
	if a.reg != nil {
		a.reg.SetDocs(st.Documents)
		a.reg.SetSnapshotGeneration(gen)
	}
	a.staged.Store(rec.LSN)
	return nil
}

// Sync makes every staged record locally durable and advances the
// resume position. Called at batch boundaries by the follower loop.
func (a *ReplicaApplier) Sync() error {
	lsn := a.staged.Load()
	if lsn <= a.applied.Load() {
		return nil
	}
	if err := a.wal.WaitDurable(lsn); err != nil {
		return fmt.Errorf("replica sync at lsn %d: %w", lsn, err)
	}
	a.applied.Store(lsn)
	if a.onDurable != nil {
		a.onDurable()
	}
	return nil
}

// InstallSnapshot atomically replaces all local state with a leader
// snapshot covering LSNs through lsn: the stream fell behind the
// leader's truncation horizon and tailing is impossible. The download
// and validation run outside the serving mutex; the switch — marker,
// rename, log reset, swap — holds it, which also serializes against a
// checkpoint persisting the old state to the same path.
func (a *ReplicaApplier) InstallSnapshot(lsn uint64, r io.Reader) error {
	tmp, err := stageSnapshot(a.indexPath, r)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	// Validate the bytes BEFORE committing to them: a truncated or
	// corrupt download must leave the serving state untouched.
	sys, err := gks.LoadIndexFile(tmp)
	if err == nil {
		err = sys.ValidateIndex()
	}
	if err != nil {
		return fmt.Errorf("replica install: rejecting snapshot at lsn %d: %w", lsn, err)
	}

	a.rl.mu.Lock()
	defer a.rl.mu.Unlock()
	if err := writeInstallMarker(a.wal.Dir()); err != nil {
		return err
	}
	if err := os.Rename(tmp, a.indexPath); err != nil {
		return fmt.Errorf("replica install: %w", err)
	}
	if err := a.wal.Reset(lsn + 1); err != nil {
		// The marker stays: boot will re-join rather than trust a
		// snapshot/log pair that no longer lines up.
		return fmt.Errorf("replica install: %w", err)
	}
	gen := a.rl.h.Swap(sys)
	st := sys.Stats()
	if a.reg != nil {
		a.reg.SetDocs(st.Documents)
		a.reg.SetSnapshotGeneration(gen)
	}
	a.staged.Store(lsn)
	a.applied.Store(lsn)
	if err := removeInstallMarker(a.wal.Dir()); err != nil {
		return err
	}
	if a.logger != nil {
		a.logger.Printf("replica: installed leader snapshot at lsn %d, generation %d serving %d document(s)",
			lsn, gen, st.Documents)
	}
	return nil
}

// stageSnapshot spools r to a durable temp file next to dst.
func stageSnapshot(dst string, r io.Reader) (string, error) {
	dir := filepath.Dir(dst)
	tmp, err := os.CreateTemp(dir, filepath.Base(dst)+".join*")
	if err != nil {
		return "", fmt.Errorf("replica install: %w", err)
	}
	if _, err := io.Copy(tmp, r); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("replica install: download: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("replica install: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("replica install: %w", err)
	}
	return tmp.Name(), nil
}

// JoinCluster bootstraps a follower that has no usable local state — a
// first boot (no index file) or a boot that found the install marker.
// It fetches the leader's current snapshot into indexPath and resets
// the local log to resume from the snapshot's LSN, using the same
// marker discipline as a live install. On return the normal boot path
// (load index, replay the — now empty — log) proceeds unchanged.
func JoinCluster(leaderURL string, client *http.Client, indexPath string, l *wal.Log, logger *log.Logger) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	resp, err := client.Get(leaderURL + "/replica/snapshot")
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("join: leader returned %s", resp.Status)
	}
	lsn, err := strconv.ParseUint(resp.Header.Get("X-Gks-Lsn"), 10, 64)
	if err != nil {
		return fmt.Errorf("join: bad X-Gks-Lsn header: %v", err)
	}
	tmp, err := stageSnapshot(indexPath, resp.Body)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if sys, err := gks.LoadIndexFile(tmp); err != nil {
		return fmt.Errorf("join: rejecting snapshot: %w", err)
	} else if err := sys.ValidateIndex(); err != nil {
		return fmt.Errorf("join: rejecting snapshot: %w", err)
	}
	if err := writeInstallMarker(l.Dir()); err != nil {
		return err
	}
	if err := os.Rename(tmp, indexPath); err != nil {
		return fmt.Errorf("join: %w", err)
	}
	if err := l.Reset(lsn + 1); err != nil {
		return fmt.Errorf("join: %w", err)
	}
	if err := removeInstallMarker(l.Dir()); err != nil {
		return err
	}
	if logger != nil {
		logger.Printf("replica: joined cluster at lsn %d from %s", lsn, leaderURL)
	}
	return nil
}
