package server

import (
	"fmt"
	"path/filepath"
	"testing"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// TestCheckpointRepack exercises the pack-maintenance half of the delta
// append design: live upserts on a packed serving system take the
// incremental path and accrue pack debt; once the debt crosses the
// configured threshold, the next checkpoint rebuilds the canonical pack,
// swaps it into service, zeroes the bloat gauge, and keeps every
// acknowledged document searchable.
func TestCheckpointRepack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.gksidx")
	sys := testSystem(t).Packed()
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 16)
	reg := obs.NewRegistry()
	rl := NewReloader(h, func() (gks.Searcher, error) { return gks.LoadIndexFile(path) }, reg, nil)
	persist := func(next gks.Searcher) error {
		return next.(*gks.System).SaveIndexFile(path)
	}
	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ing := NewIngester(rl, persist, reg, nil)
	cp := NewCheckpointer(rl, l, persist, 0, reg, nil) // explicit checkpoints only
	cp.EnableRepack(0.05)
	ing.EnableWAL(l, cp.Notify)
	hnd := ing.Handler()

	for i := 0; i < 4; i++ {
		code, body := adminReq(t, hnd, "POST", "/admin/docs",
			docBody(fmt.Sprintf("d%d.xml", i), "neutrino", "gluon"))
		if code != 200 {
			t.Fatalf("add %d: status %d: %s", i, code, body)
		}
	}
	// Debt > 0 proves the upserts went through the delta path on a still-
	// packed table (the legacy splice re-packs canonically, debt 0).
	if debt := gks.PackDebt(h.Searcher()); debt == 0 {
		t.Fatal("upserts on the packed base accrued no pack debt; delta path not engaged")
	}

	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	total, bloat := reg.RepackStats()
	if total != 1 {
		t.Fatalf("repacks after threshold crossing = %d, want 1", total)
	}
	if bloat != 0 {
		t.Errorf("post-repack bloat gauge = %v, want 0", bloat)
	}
	if debt := gks.PackDebt(h.Searcher()); debt != 0 {
		t.Errorf("serving system still carries pack debt %v after repack", debt)
	}
	if n := searchTotal(t, h, "neutrino"); n == 0 {
		t.Fatal("delta-appended documents lost across repack")
	}
	if n := searchTotal(t, h, "Karen"); n == 0 {
		t.Fatal("base document lost across repack")
	}

	// Below the threshold nothing repacks: raise it, add one more
	// document, checkpoint again — counter must not move, and the gauge
	// must publish the (small, nonzero) outstanding debt.
	cp.EnableRepack(0.99)
	if code, body := adminReq(t, hnd, "POST", "/admin/docs",
		docBody("d9.xml", "tachyon", "axion")); code != 200 {
		t.Fatalf("add d9: status %d: %s", code, body)
	}
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	total, bloat = reg.RepackStats()
	if total != 1 {
		t.Fatalf("repacks after sub-threshold checkpoint = %d, want still 1", total)
	}
	if bloat == 0 {
		t.Error("bloat gauge = 0 with an outstanding delta append, want > 0")
	}
	if n := searchTotal(t, h, "tachyon"); n == 0 {
		t.Fatal("post-repack delta append not searchable")
	}
}
