// Live document ingestion over HTTP: the write surface that turns gksd from
// a read-only snapshot server into an online system.
//
//	POST   /admin/docs          {"name": "...", "xml": "..."}   add or replace
//	DELETE /admin/docs/{name}                                   delete
//
// Every mutation builds the successor system copy-on-write (searches keep
// running on the old one) and is made durable before it is acknowledged.
// Durability comes in two flavors:
//
//   - WAL mode (EnableWAL): the mutation is appended to the write-ahead
//     log and swapped into service under the Reloader's mutex, then the
//     handler waits — outside the lock — for the record's group-commit
//     fsync before acknowledging. Concurrent writers share flushes, so
//     throughput no longer collapses under the cost of rewriting the
//     whole snapshot per mutation; a background checkpointer folds the
//     log into a snapshot and truncates it (see checkpoint.go).
//   - Legacy snapshot mode (persist != nil, no WAL): the whole successor
//     snapshot is written through the crash-safe snapshot writer before
//     the swap, exactly as before.
//
// Either way a crash leaves recoverable state on disk — never a torn
// file — and a failed append/persist leaves the old system serving,
// exactly like a rejected reload: the generation and document gauges do
// not move. Mutations serialize with /admin/reload and SIGHUP through
// the Reloader's mutex, so a reload can never interleave with a
// half-applied ingest.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// maxDocBody bounds the /admin/docs request body. Documents above this are
// batch-indexing territory (gks index + /admin/reload), not live ingest.
const maxDocBody = 8 << 20

// Ingester serves the /admin/docs mutation endpoints against a Handler's
// live system. persist writes the successor system durably before it is
// swapped into service; nil persist means the deployment is in-memory
// (booted from raw files) and mutations are acknowledged without
// durability — the response says which. reg and logger may be nil.
type Ingester struct {
	rl      *Reloader
	persist func(gks.Searcher) error
	reg     *obs.Registry
	logger  *log.Logger
	maxBody int64

	wal       *wal.Log // when set, mutations acknowledge on log durability
	onDurable func()   // notified after each durable mutation (checkpoint trigger)
}

// NewIngester builds the mutation surface for the Reloader's handler. The
// Reloader is required (not just a Handler) because its mutex is the one
// lock serializing every serving-state transition.
func NewIngester(rl *Reloader, persist func(gks.Searcher) error, reg *obs.Registry, logger *log.Logger) *Ingester {
	return &Ingester{rl: rl, persist: persist, reg: reg, logger: logger, maxBody: maxDocBody}
}

// EnableWAL switches the durability contract from snapshot-per-mutation to
// write-ahead logging: mutations append to l and acknowledge when their
// record's group-commit fsync lands; the persist func is no longer called
// on the mutation path (the checkpointer owns it). onDurable, if non-nil,
// runs after every acknowledged mutation — the checkpointer's trigger.
func (ing *Ingester) EnableWAL(l *wal.Log, onDurable func()) {
	ing.wal = l
	ing.onDurable = onDurable
}

// Handler routes /admin/docs (POST) and /admin/docs/{name} (DELETE).
func (ing *Ingester) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/admin/docs")
		rest = strings.TrimPrefix(rest, "/")
		if rest == "" {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", "POST")
				writeJSONStatus(w, http.StatusMethodNotAllowed, map[string]any{
					"error": "document upsert requires POST",
				})
				return
			}
			ing.handleUpsert(w, r)
			return
		}
		if r.Method != http.MethodDelete {
			w.Header().Set("Allow", "DELETE")
			writeJSONStatus(w, http.StatusMethodNotAllowed, map[string]any{
				"error": "document delete requires DELETE",
			})
			return
		}
		name, err := url.PathUnescape(rest)
		if err != nil {
			clientError(w, fmt.Errorf("invalid document name escape: %w", err))
			return
		}
		ing.handleDelete(w, name)
	})
}

// docRequest is the wire form of a document upsert.
type docRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

// parseDocRequest validates an upsert body: strict JSON (unknown fields and
// trailing garbage rejected), a clean non-empty name, non-empty XML. It is
// the fuzz target guarding the admin surface — it must never panic and
// never accept a name that would corrupt a snapshot manifest or a log line.
func parseDocRequest(body []byte) (name, src string, err error) {
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var req docRequest
	if err := dec.Decode(&req); err != nil {
		return "", "", fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return "", "", errors.New("invalid JSON body: trailing data after document object")
	}
	name = strings.TrimSpace(req.Name)
	switch {
	case name == "":
		return "", "", errors.New("missing document name")
	case len(name) > 512:
		return "", "", fmt.Errorf("document name too long (%d bytes, max 512)", len(name))
	case strings.ContainsAny(name, "\x00\n\r"):
		return "", "", errors.New("document name contains control characters")
	}
	if strings.TrimSpace(req.XML) == "" {
		return "", "", errors.New("missing xml document body")
	}
	return name, req.XML, nil
}

func (ing *Ingester) handleUpsert(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, ing.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONStatus(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("document body exceeds %d bytes", ing.maxBody),
			})
			return
		}
		clientError(w, fmt.Errorf("reading body: %w", err))
		return
	}
	name, src, err := parseDocRequest(body)
	if err != nil {
		clientError(w, err)
		return
	}
	doc, err := gks.ParseDocumentString(src, name)
	if err != nil {
		clientError(w, fmt.Errorf("parsing document %q: %w", name, err))
		return
	}

	start := time.Now()
	ing.rl.mu.Lock()
	next, replaced, err := gks.Upsert(ing.rl.h.Searcher(), doc)
	if err != nil {
		ing.rl.mu.Unlock()
		ing.observe("upsert", false, start)
		if errors.Is(err, gks.ErrNoLiveIngestion) {
			serverError(w, err)
		} else {
			clientError(w, err)
		}
		return
	}
	op := "add"
	if replaced {
		op = "replace"
	}
	ing.commit(w, "upsert", op, name, src, next, start)
}

func (ing *Ingester) handleDelete(w http.ResponseWriter, name string) {
	start := time.Now()
	ing.rl.mu.Lock()
	next, err := gks.Remove(ing.rl.h.Searcher(), name)
	if err != nil {
		ing.rl.mu.Unlock()
		ing.observe("delete", false, start)
		switch {
		case errors.Is(err, gks.ErrDocNotFound):
			writeError(w, &statusError{http.StatusNotFound, err})
		case errors.Is(err, gks.ErrLastDocument):
			// Deleting the corpus out from under a serving index is almost
			// certainly an operator mistake; 409 keeps it a deliberate act
			// (reboot the daemon empty) rather than one stray curl.
			writeError(w, &statusError{http.StatusConflict, err})
		default:
			serverError(w, err)
		}
		return
	}
	ing.commit(w, "delete", "delete", name, "", next, start)
}

// commit runs the durability-then-swap tail shared by every mutation.
// Callers hold rl.mu; commit releases it.
//
// The ordering is the durability contract, audited both ways:
//
//   - A failed WAL append or snapshot persist must leave the serving
//     state — and everything that reports it — untouched: no Swap, no
//     gks_docs / generation gauge movement, and the error message reads
//     the generation AFTER the failure so it names the snapshot actually
//     still serving.
//   - On the WAL path the swap and gauge updates happen under rl.mu, but
//     the group-commit fsync wait happens OUTSIDE it — holding the
//     serving lock across an fsync would serialize every writer behind
//     every flush and forfeit group commit entirely.
func (ing *Ingester) commit(w http.ResponseWriter, metricOp, op, name, src string, next gks.Searcher, start time.Time) {
	var lsn uint64
	switch {
	case ing.wal != nil:
		wop := wal.OpUpsert
		if op == "delete" {
			wop = wal.OpDelete
		}
		var err error
		if lsn, err = ing.wal.Enqueue(wop, name, src); err != nil {
			ing.rl.mu.Unlock()
			ing.observe(metricOp, false, start)
			gen := ing.rl.h.Generation()
			if ing.logger != nil {
				ing.logger.Printf("ingest %s %q: wal append failed, still serving generation %d: %v", op, name, gen, err)
			}
			serverError(w, fmt.Errorf("wal append failed, still serving generation %d: %w", gen, err))
			return
		}
	case ing.persist != nil:
		if err := ing.persist(next); err != nil {
			ing.rl.mu.Unlock()
			ing.observe(metricOp, false, start)
			gen := ing.rl.h.Generation()
			if ing.logger != nil {
				ing.logger.Printf("ingest %s %q: persist failed, still serving generation %d: %v", op, name, gen, err)
			}
			serverError(w, fmt.Errorf("persist failed, still serving generation %d: %w", gen, err))
			return
		}
	}
	gen := ing.rl.h.Swap(next)
	st := next.Stats()
	if ing.reg != nil {
		ing.reg.SetDocs(st.Documents)
		ing.reg.SetSnapshotGeneration(gen)
		if ss, ok := next.(*gks.ShardedSystem); ok {
			ing.reg.SetShardCount(ss.NumShards())
		}
	}
	ing.rl.mu.Unlock()

	if ing.wal != nil {
		if err := ing.wal.WaitDurable(lsn); err != nil {
			// The mutation is applied and serving but its record never hit
			// disk — a crash now would lose it. Refuse the ack so the client
			// retries; the log is wedged, so the operator will hear about it.
			ing.observe(metricOp, false, start)
			if ing.logger != nil {
				ing.logger.Printf("ingest %s %q: wal fsync failed, lsn %d applied but not durable: %v", op, name, lsn, err)
			}
			serverError(w, fmt.Errorf("wal fsync failed: mutation applied but not durable: %w", err))
			return
		}
		if ing.onDurable != nil {
			ing.onDurable()
		}
	}
	ing.observe(metricOp, true, start)
	if ing.logger != nil {
		ing.logger.Printf("ingest %s %q: generation %d now serving %d document(s)", op, name, gen, st.Documents)
	}
	resp := map[string]any{
		"op":         op,
		"name":       name,
		"generation": gen,
		"documents":  st.Documents,
		"persisted":  ing.wal != nil || ing.persist != nil,
	}
	if ing.wal != nil {
		resp["lsn"] = lsn
	}
	writeJSON(w, resp)
}

func (ing *Ingester) observe(op string, ok bool, start time.Time) {
	if ing.reg != nil {
		ing.reg.ObserveIngest(op, ok, time.Since(start))
	}
}
