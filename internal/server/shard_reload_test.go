package server

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gks "repro"
	"repro/internal/obs"
)

// manifestFile builds a sharded index over several departments and
// persists it as a GKSM1 manifest plus shard snapshots, returning the
// manifest path. The student name distinguishes generations in searches.
func manifestFile(t *testing.T, dir, name, student string, shards int) string {
	t.Helper()
	docs := make([]*gks.Document, 4)
	for i := range docs {
		docs[i] = gks.BuildDocument(fmt.Sprintf("%s-dept%d.xml", name, i), gks.E("Dept",
			gks.ET("Dept_Name", fmt.Sprintf("Dept%d", i)),
			gks.E("Courses",
				gks.E("Course",
					gks.ET("Name", "Data Mining"),
					gks.E("Students",
						gks.ET("Student", "Karen"),
						gks.ET("Student", student),
					),
				),
			),
		))
	}
	set, err := gks.IndexDocumentsSharded(shards, docs...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".gksm")
	if err := set.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardSetReloadUnderTraffic is the sharded counterpart of
// TestReloadUnderTraffic, meant for -race: a whole shard set hot-swaps
// under concurrent search traffic with zero failed requests, and a set
// with ONE corrupt shard file rolls back as a unit — the server never
// serves a mixed-generation or partial set.
func TestShardSetReloadUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	pathA := manifestFile(t, dir, "a", "Mike", 3)
	pathB := manifestFile(t, dir, "b", "Walter", 3)
	// Generation C: a full copy of B with a single bit flipped in one
	// shard snapshot. The manifest itself is intact — only the per-shard
	// CRC check can catch this, and it must fail the whole set.
	pathC := manifestFile(t, dir, "c", "Xavier", 3)
	// Shard file names embed the manifest generation; glob rather than
	// hard-code it.
	matches, err := filepath.Glob(filepath.Join(dir, "c.gksm.g*.s001"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("locating shard file c.gksm.g*.s001: matches=%v err=%v", matches, err)
	}
	corruptShard := matches[0]
	raw, err := os.ReadFile(corruptShard)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(corruptShard, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	bootSys, err := gks.LoadShardSet(pathA)
	if err != nil {
		t.Fatal(err)
	}

	var loadPath atomic.Value
	loadPath.Store(pathA)
	logger := log.New(io.Discard, "", 0)
	reg := obs.NewRegistry()
	api := NewWithCache(bootSys, 64)
	reg.SetCacheStats(api.CacheStats)
	reg.SetSnapshotGeneration(api.Generation())
	rl := NewReloader(api, func() (gks.Searcher, error) {
		set, err := gks.LoadShardSet(loadPath.Load().(string))
		if err != nil {
			return nil, err
		}
		set.SetMetrics(reg)
		reg.SetShardCount(set.NumShards())
		return set, nil
	}, reg, logger)

	root := http.NewServeMux()
	root.Handle("/", Chain(api,
		WithMetrics(reg),
		WithRecovery(reg, logger),
		WithLimit(128, reg),
		WithTimeout(5*time.Second),
	))
	root.Handle("/admin/reload", Chain(rl.AdminHandler(), WithRecovery(reg, logger)))
	ts := httptest.NewServer(root)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var requests atomic.Int64
	failures := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := []string{"/search?q=karen&s=1", "/search?q=karen+mining&s=2", "/search?q=dept2&s=1"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + queries[i%len(queries)])
				if err != nil {
					select {
					case failures <- err.Error():
					default:
					}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case failures <- fmt.Sprintf("status %d: %s", resp.StatusCode, body):
					default:
					}
					return
				}
				requests.Add(1)
			}
		}(i)
	}
	waitTraffic := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for requests.Load() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitTraffic(50)

	// 1. Hot swap shard set A -> B under traffic.
	loadPath.Store(pathB)
	resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	sr, err := http.Get(ts.URL + "/search?q=walter&s=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	// Walter appears once per department document in generation B.
	if sr.StatusCode != http.StatusOK || !strings.Contains(string(body), `"total": 4`) {
		t.Fatalf("post-reload search for new set's data: status %d body %s", sr.StatusCode, body)
	}

	waitTraffic(requests.Load() + 50)

	// 2. Reload pointed at the set with one corrupt shard: the whole set
	// is rejected, the old one keeps serving.
	loadPath.Store(pathC)
	resp, err = http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), filepath.Base(corruptShard)) {
		t.Errorf("corrupt reload error should name the damaged shard file: %s", body)
	}
	if api.Generation() != 2 {
		t.Fatalf("generation moved on failed shard-set reload: %d", api.Generation())
	}
	sr, err = http.Get(ts.URL + "/search?q=walter&s=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || !strings.Contains(string(body), `"total": 4`) {
		t.Fatalf("rolled-back server no longer serving set B: status %d body %s", sr.StatusCode, body)
	}
	if _, fail, _ := reg.ReloadStats(); fail != 1 {
		t.Fatalf("failure reload counter = %d, want 1", fail)
	}

	waitTraffic(requests.Load() + 50)
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Errorf("search traffic failed during shard-set reload: %s", f)
	}

	// The exposition carries the shard series for the live set.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "gks_shard_count 3") {
		t.Errorf("metrics missing gks_shard_count 3:\n%s", buf.String())
	}
}
