package server

import (
	"bytes"
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// Middleware wraps an http.Handler with one serving concern. Compose with
// Chain; cmd/gksd assembles the production stack
// metrics → access log → recovery → limiter → timeout → API handler.
type Middleware func(http.Handler) http.Handler

// Chain applies mw to h so that mw[0] is the outermost layer.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// statusWriter records the status code and body size flowing through a
// ResponseWriter so the logging and metrics layers can observe outcomes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// reach Flush and SetWriteDeadline through the wrapper — the replication
// stream needs both from inside the middleware chain.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// endpointLabel collapses unknown paths to "other" so a path-scanning
// client cannot explode the metrics label space.
func endpointLabel(path string) string {
	for _, ep := range Endpoints() {
		if path == ep {
			return ep
		}
	}
	return "other"
}

// WithMetrics records per-endpoint request counts, error counts, and
// latency into reg. Place it outermost so it observes the final status of
// recovered panics, shed load, and timeouts.
func WithMetrics(reg *obs.Registry) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			reg.ObserveRequest(endpointLabel(r.URL.Path), sw.Status(), time.Since(start))
		})
	}
}

// WithAccessLog writes one structured line per request to logger.
func WithAccessLog(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			logger.Printf("access remote=%s method=%s uri=%q status=%d bytes=%d dur=%s",
				r.RemoteAddr, r.Method, r.URL.RequestURI(), sw.Status(), sw.bytes, time.Since(start).Round(time.Microsecond))
		})
	}
}

// WithRecovery converts handler panics into JSON 500 responses (plus a
// panic counter and a stack-trace log line) instead of killing the process.
// It must sit outside WithTimeout, which re-panics on its caller's
// goroutine so panics from the handler goroutine land here.
func WithRecovery(reg *obs.Registry, logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				if v := recover(); v != nil {
					if reg != nil {
						reg.IncPanic()
					}
					if logger != nil {
						logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
					}
					if sw.status == 0 { // nothing written yet: we can still answer
						writeJSONStatus(sw, http.StatusInternalServerError,
							map[string]string{"error": "internal server error"})
					}
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// WithLimit caps concurrent in-flight requests at n; excess load is shed
// immediately with 503 + Retry-After rather than queued unboundedly. n <= 0
// disables the limiter.
func WithLimit(n int, reg *obs.Registry) Middleware {
	if n <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	sem := make(chan struct{}, n)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				if reg != nil {
					reg.AddInFlight(1)
					defer reg.AddInFlight(-1)
				}
				next.ServeHTTP(w, r)
			default:
				if reg != nil {
					reg.IncShed()
				}
				w.Header().Set("Retry-After", "1")
				writeJSONStatus(w, http.StatusServiceUnavailable,
					map[string]string{"error": "server at capacity, retry shortly"})
			}
		})
	}
}

// bufferedResponse accumulates a handler's response in memory so WithTimeout
// can discard it wholesale if the deadline fires first; a response is either
// delivered complete or replaced by the 504, never interleaved.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	w.Write(b.body.Bytes())
}

// WithTimeout enforces a per-request deadline d: the deadline is installed
// on the request context (honored by the System.*Context search entry
// points) and, if it fires before the handler finishes, the client gets a
// JSON 504 while the abandoned handler's buffered output is discarded.
// Handler panics are re-raised on the caller's goroutine so an outer
// WithRecovery still catches them. d <= 0 disables the timeout.
func WithTimeout(d time.Duration) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)

			buf := newBufferedResponse()
			done := make(chan struct{})
			panicked := make(chan any, 1)
			go func() {
				defer func() {
					if v := recover(); v != nil {
						panicked <- v
						return
					}
					close(done)
				}()
				next.ServeHTTP(buf, r)
			}()

			select {
			case v := <-panicked:
				panic(v)
			case <-done:
				buf.copyTo(w)
			case <-ctx.Done():
				writeJSONStatus(w, http.StatusGatewayTimeout,
					map[string]string{"error": "request timed out"})
			}
		})
	}
}
