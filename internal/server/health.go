// The /healthz surface: liveness plus the replication-aware readiness
// gate load balancers and the query router probe.
//
//	GET /healthz        always 200 while the process serves; reports
//	                    role, generation, WAL positions, checkpoint lag
//	                    and (on followers) replication status
//	GET /healthz?ready  503 until the node is fit to serve: boot replay
//	                    finished (it runs before the server binds, so a
//	                    bound single node is ready) and, on followers,
//	                    initial catch-up is complete and lag is bounded
package server

import (
	"net/http"

	"repro/internal/wal"
)

// Health serves /healthz. All fields except Handler are optional.
type Health struct {
	Handler *Handler
	// Role is reported verbatim: "single", "leader" or "follower".
	Role string
	// WAL, when set, adds log positions and checkpoint lag.
	WAL *wal.Log
	// Checkpoint, when set with WAL, reports the last checkpointed LSN.
	Checkpoint *Checkpointer
	// Ready gates ?ready; nil means always ready once serving.
	Ready func() bool
	// Replica, when set, is embedded as the "replica" field — a
	// follower's replica.Status.
	Replica func() any
}

func (hl *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeJSONStatus(w, http.StatusMethodNotAllowed, map[string]any{
			"error": "healthz requires GET",
		})
		return
	}
	role := hl.Role
	if role == "" {
		role = "single"
	}
	ready := hl.Ready == nil || hl.Ready()
	status := "ok"
	if !ready {
		status = "catching-up"
	}
	out := map[string]any{
		"status":     status,
		"role":       role,
		"generation": hl.Handler.Generation(),
		"documents":  hl.Handler.Searcher().Stats().Documents,
	}
	if hl.WAL != nil {
		last := hl.WAL.LastLSN()
		// The checkpoint position is the later of the last in-process
		// checkpoint and the log floor: right after boot no checkpoint has
		// run yet, but everything at or below the floor is already folded
		// into the on-disk snapshot.
		ckpt := hl.WAL.Floor()
		if hl.Checkpoint != nil {
			if lsn := hl.Checkpoint.LastCheckpointLSN(); lsn > ckpt {
				ckpt = lsn
			}
		}
		out["wal"] = map[string]any{
			"lastLsn":       last,
			"durableLsn":    hl.WAL.DurableLSN(),
			"floorLsn":      hl.WAL.Floor(),
			"checkpointLsn": ckpt,
			"checkpointLag": last - ckpt,
		}
	}
	if hl.Replica != nil {
		out["replica"] = hl.Replica()
	}
	if _, wantReady := r.URL.Query()["ready"]; wantReady && !ready {
		writeJSONStatus(w, http.StatusServiceUnavailable, out)
		return
	}
	writeJSON(w, out)
}
