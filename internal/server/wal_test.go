package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// walStack assembles the WAL-mode mutation stack gksd wires up: handler,
// reloader, WAL-enabled ingester, and a checkpointer triggered every
// `every` durable mutations. persists counts snapshot writes so tests can
// assert the hot path stopped paying for them.
func walStack(t *testing.T, dir string, every int) (*Handler, *Ingester, *Checkpointer, *wal.Log, *obs.Registry, *atomic.Int64) {
	t.Helper()
	path := filepath.Join(dir, "live.gksidx")
	sys := testSystem(t)
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 16)
	reg := obs.NewRegistry()
	rl := NewReloader(h, func() (gks.Searcher, error) { return gks.LoadIndexFile(path) }, reg, nil)
	var persists atomic.Int64
	persist := func(next gks.Searcher) error {
		single, ok := next.(*gks.System)
		if !ok {
			return fmt.Errorf("not a single-index system: %T", next)
		}
		persists.Add(1)
		return single.SaveIndexFile(path)
	}
	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ing := NewIngester(rl, persist, reg, nil)
	cp := NewCheckpointer(rl, l, persist, every, reg, nil)
	ing.EnableWAL(l, cp.Notify)
	return h, ing, cp, l, reg, &persists
}

// TestIngestWALMode checks the new durability contract end to end:
// mutations acknowledge with an lsn and persisted=true WITHOUT rewriting
// the snapshot, the checkpointer folds the log after the configured number
// of mutations, and a recovery (snapshot + log replay) reproduces the
// acknowledged state.
func TestIngestWALMode(t *testing.T) {
	dir := t.TempDir()
	h, ing, cp, l, reg, persists := walStack(t, dir, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cp.Run(ctx) }()
	hnd := ing.Handler()

	code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody("w1.xml", "neutrino", "quark"))
	if code != 200 {
		t.Fatalf("add: status %d: %s", code, body)
	}
	var ack struct {
		LSN       uint64 `json:"lsn"`
		Persisted bool   `json:"persisted"`
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatalf("bad ack: %v\n%s", err, body)
	}
	if ack.LSN != 1 || !ack.Persisted {
		t.Fatalf("ack = %+v, want lsn 1 persisted", ack)
	}
	if n := persists.Load(); n != 0 {
		t.Fatalf("first mutation rewrote the snapshot %d time(s); WAL mode must not", n)
	}
	if n := searchTotal(t, h, "neutrino"); n == 0 {
		t.Fatal("added document not searchable")
	}
	if fsyncs, segs, bytes := reg.WALStats(); fsyncs == 0 || segs == 0 || bytes == 0 {
		t.Fatalf("wal metrics not reporting: fsyncs=%d segments=%d bytes=%d", fsyncs, segs, bytes)
	}

	// Two more durable mutations cross the every=3 threshold.
	for i := 2; i <= 3; i++ {
		if code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody(fmt.Sprintf("w%d.xml", i), "quark")); code != 200 {
			t.Fatalf("add %d: status %d: %s", i, code, body)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _, _ := reg.CheckpointStats(); ok > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never fired after threshold mutations")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if persists.Load() == 0 {
		t.Fatal("checkpoint reported success without persisting")
	}
	cancel()
	<-done

	// Recovery: snapshot + surviving log tail reproduce the served state.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	loaded, err := gks.LoadIndexFile(filepath.Join(dir, "live.gksidx"))
	if err != nil {
		t.Fatal(err)
	}
	recovered, _, err := gks.ReplayWAL(loaded, l2)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := h.Searcher().Stats().Documents, recovered.Stats().Documents; got != want {
		t.Fatalf("recovered %d documents, serving %d", got, want)
	}
}

// TestIngestWALAppendFailureKeepsGauges is the regression test for the
// failed-append audit: when the log rejects an append, the serving state
// must be completely untouched — no generation bump, no gks_docs gauge
// movement — and the 500 must name the generation actually still serving.
func TestIngestWALAppendFailureKeepsGauges(t *testing.T) {
	dir := t.TempDir()
	h, ing, _, l, reg, persists := walStack(t, dir, 0)
	hnd := ing.Handler()

	if code, _ := adminReq(t, hnd, "POST", "/admin/docs", docBody("ok.xml", "boson")); code != 200 {
		t.Fatal("healthy mutation failed")
	}
	genBefore := h.Generation()
	_, _, docsBefore := reg.IngestStats()
	docCountBefore := h.Searcher().Stats().Documents

	// Close the log out from under the ingester: every append now fails.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody("bad.xml", "tachyon"))
	if code != http.StatusInternalServerError {
		t.Fatalf("append failure: status %d, want 500: %s", code, body)
	}
	if want := fmt.Sprintf("still serving generation %d", genBefore); !strings.Contains(body, want) {
		t.Fatalf("error %q does not name the serving generation (%q)", body, want)
	}
	if h.Generation() != genBefore {
		t.Fatalf("generation moved to %d on failed append", h.Generation())
	}
	if _, _, docs := reg.IngestStats(); docs != docsBefore {
		t.Fatalf("gks_docs gauge moved to %d on failed append (was %d)", docs, docsBefore)
	}
	if got := h.Searcher().Stats().Documents; got != docCountBefore {
		t.Fatalf("serving system mutated on failed append: %d docs, was %d", got, docCountBefore)
	}
	if n := searchTotal(t, h, "tachyon"); n != 0 {
		t.Fatal("rejected document is searchable")
	}
	// A delete against the wedged log fails the same contract.
	code, body = adminReq(t, hnd, "DELETE", "/admin/docs/ok.xml", "")
	if code != http.StatusInternalServerError || !strings.Contains(body, "still serving generation") {
		t.Fatalf("delete on wedged log: status %d: %s", code, body)
	}
	if persists.Load() != 0 {
		t.Fatal("WAL mode called the per-mutation persist path")
	}
}

// TestIngestWALConcurrentWriters hammers the mutation surface from many
// goroutines — the scenario group commit exists for — and checks every
// acknowledged write is in the log, the serving state, and recoverable.
// Run under -race via the wal-smoke make target.
func TestIngestWALConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	h, ing, _, l, reg, _ := walStack(t, dir, 0)
	hnd := ing.Handler()

	const writers, opsEach = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				name := fmt.Sprintf("c%d-%d.xml", wtr, op)
				code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody(name, "lepton", "muon"))
				if code != 200 {
					errs <- fmt.Errorf("%s: status %d: %s", name, code, body)
					return
				}
			}
		}(wtr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != writers*opsEach {
		t.Fatalf("log holds %d records, want %d", got, writers*opsEach)
	}
	if got := l.DurableLSN(); got != writers*opsEach {
		t.Fatalf("durable through %d, want %d (all were acknowledged)", got, writers*opsEach)
	}
	okN, failN, _ := reg.IngestStats()
	if okN != writers*opsEach || failN != 0 {
		t.Fatalf("ingest counters ok=%d fail=%d, want %d/0", okN, failN, writers*opsEach)
	}
	if n := searchTotal(t, h, "lepton"); n == 0 {
		t.Fatal("concurrent writes not searchable")
	}
}
