package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wal"
)

func getHealth(t *testing.T, hl *Health, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	hl.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("healthz body not JSON: %v: %s", err, rec.Body.String())
	}
	return rec.Code, out
}

func TestHealthzReportsWALPositions(t *testing.T) {
	l, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Oversized docs force one record per segment so TruncateThrough(2)
	// actually removes the first two.
	doc := "<x>" + strings.Repeat("p", 100) + "</x>"
	for i := 0; i < 5; i++ {
		if _, err := l.Append(wal.OpUpsert, "d", doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.TruncateThrough(2); err != nil {
		t.Fatal(err)
	}

	hl := &Health{Handler: testHandler(t), Role: "leader", WAL: l}
	code, out := getHealth(t, hl, "/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if out["status"] != "ok" || out["role"] != "leader" {
		t.Fatalf("healthz: %+v", out)
	}
	w, ok := out["wal"].(map[string]any)
	if !ok {
		t.Fatalf("no wal block: %+v", out)
	}
	if w["lastLsn"].(float64) != 5 || w["durableLsn"].(float64) != 5 {
		t.Fatalf("wal lsns: %+v", w)
	}
	floor := w["floorLsn"].(float64)
	if floor < 1 || floor > 2 {
		t.Fatalf("floorLsn %v, want within truncated prefix", floor)
	}
	if w["checkpointLag"].(float64) != 5-floor {
		t.Fatalf("checkpointLag %v, want %v", w["checkpointLag"], 5-floor)
	}
}

func TestHealthzReadyGate(t *testing.T) {
	ready := false
	hl := &Health{Handler: testHandler(t), Role: "follower", Ready: func() bool { return ready }}

	// Plain liveness stays 200 while catching up; ?ready gates.
	code, out := getHealth(t, hl, "/healthz")
	if code != 200 || out["status"] != "catching-up" {
		t.Fatalf("liveness while catching up: %d %+v", code, out)
	}
	code, _ = getHealth(t, hl, "/healthz?ready")
	if code != 503 {
		t.Fatalf("?ready while catching up: %d, want 503", code)
	}
	ready = true
	code, out = getHealth(t, hl, "/healthz?ready")
	if code != 200 || out["status"] != "ok" {
		t.Fatalf("?ready when caught up: %d %+v", code, out)
	}
}
