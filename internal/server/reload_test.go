package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gks "repro"
	"repro/internal/obs"
)

// snapshotFile persists a freshly indexed document to a snapshot on disk
// and returns the path.
func snapshotFile(t *testing.T, dir, name, student string) string {
	t.Helper()
	doc := gks.BuildDocument(name+".xml", gks.E("Dept",
		gks.ET("Dept_Name", "CS"),
		gks.E("Courses",
			gks.E("Course",
				gks.ET("Name", "Data Mining"),
				gks.E("Students",
					gks.ET("Student", "Karen"),
					gks.ET("Student", student),
				),
			),
			gks.E("Course",
				gks.ET("Name", "Algorithms"),
				gks.E("Students",
					gks.ET("Student", "Karen"),
					gks.ET("Student", "Julie"),
				),
			),
		),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".gksidx")
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadUnderTraffic is the end-to-end robustness check for the
// snapshot/reload subsystem, run with the full gksd-shaped middleware
// stack and meant for -race: concurrent /search clients must see zero
// failed requests while the index is hot-swapped underneath them; a
// reload pointed at a corrupt snapshot must roll back and keep the old
// index serving.
func TestReloadUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	pathA := snapshotFile(t, dir, "a", "Mike")
	pathB := snapshotFile(t, dir, "b", "Walter")
	corrupt := filepath.Join(dir, "corrupt.gksidx")
	raw, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), raw...)
	damaged[len(damaged)/2] ^= 0xff
	if err := os.WriteFile(corrupt, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	bootSys, err := gks.LoadIndexFile(pathA)
	if err != nil {
		t.Fatal(err)
	}

	// Assemble the same stack cmd/gksd runs: metrics, recovery, limiter,
	// timeout around the API; reload admin endpoint beside it.
	var loadPath atomic.Value
	loadPath.Store(pathA)
	logger := log.New(io.Discard, "", 0)
	reg := obs.NewRegistry()
	api := NewWithCache(bootSys, 64)
	reg.SetCacheStats(api.CacheStats)
	reg.SetSnapshotGeneration(api.Generation())
	rl := NewReloader(api, func() (gks.Searcher, error) {
		return gks.LoadIndexFile(loadPath.Load().(string))
	}, reg, logger)

	root := http.NewServeMux()
	root.Handle("/", Chain(api,
		WithMetrics(reg),
		WithRecovery(reg, logger),
		WithLimit(128, reg),
		WithTimeout(5*time.Second),
	))
	root.Handle("/admin/reload", Chain(rl.AdminHandler(), WithRecovery(reg, logger)))
	ts := httptest.NewServer(root)
	defer ts.Close()

	// Hammer /search from several clients for the whole test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var requests atomic.Int64
	failures := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := []string{"/search?q=karen&s=1", "/search?q=karen+julie&s=2", "/search?q=algorithms&s=1"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + queries[i%len(queries)])
				if err != nil {
					select {
					case failures <- err.Error():
					default:
					}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case failures <- fmt.Sprintf("status %d: %s", resp.StatusCode, body):
					default:
					}
					return
				}
				requests.Add(1)
			}
		}(i)
	}

	waitTraffic := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for requests.Load() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitTraffic(50)

	// 1. Hot reload A -> B under traffic.
	loadPath.Store(pathB)
	resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var okBody struct {
		Generation int64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&okBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if okBody.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", okBody.Generation)
	}
	if ok, fail, gen := reg.ReloadStats(); ok != 1 || fail != 0 || gen != 2 {
		t.Fatalf("reload metrics after success = ok %d fail %d gen %d", ok, fail, gen)
	}

	// The swap must be visible to new requests: "walter" only exists in B,
	// and the cache must not serve generation-1 entries.
	sr, err := http.Get(ts.URL + "/search?q=walter&s=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || !strings.Contains(string(body), `"total": 1`) {
		t.Fatalf("post-reload search for new snapshot's data: status %d body %s", sr.StatusCode, body)
	}

	waitTraffic(requests.Load() + 50)

	// 2. Reload pointed at a corrupt snapshot: surfaced error, rollback,
	// old generation keeps serving.
	loadPath.Store(corrupt)
	resp, err = http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "corrupt") || !strings.Contains(string(body), "corrupt.gksidx") {
		t.Errorf("corrupt reload error should name the damaged file: %s", body)
	}
	if ok, fail, gen := reg.ReloadStats(); ok != 1 || fail != 1 || gen != 2 {
		t.Fatalf("reload metrics after failure = ok %d fail %d gen %d", ok, fail, gen)
	}
	if api.Generation() != 2 {
		t.Fatalf("generation moved on failed reload: %d", api.Generation())
	}
	sr, err = http.Get(ts.URL + "/search?q=walter&s=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || !strings.Contains(string(body), `"total": 1`) {
		t.Fatalf("rolled-back server no longer serving generation 2: status %d body %s", sr.StatusCode, body)
	}

	waitTraffic(requests.Load() + 50)
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Errorf("search traffic failed during reload: %s", f)
	}
	if requests.Load() < 150 {
		t.Errorf("only %d successful requests flowed during the test", requests.Load())
	}

	// The Prometheus exposition must carry the reload series.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	for _, want := range []string{
		"gks_snapshot_generation 2",
		`gks_snapshot_reloads_total{result="success"} 1`,
		`gks_snapshot_reloads_total{result="failure"} 1`,
		"gks_snapshot_last_reload_timestamp_seconds",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSwapInvalidatesCache pins the cache-coherence contract: a cached
// /search response from one snapshot generation must never be served
// after a swap, because the generation is part of the cache key.
func TestSwapInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	sysA, err := gks.LoadIndexFile(snapshotFile(t, dir, "a", "Mike"))
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := gks.LoadIndexFile(snapshotFile(t, dir, "b", "Walter"))
	if err != nil {
		t.Fatal(err)
	}

	h := NewWithCache(sysA, 16)
	code, before := get(t, h, "/search?q=mike&s=1")
	if code != 200 || !strings.Contains(before, `"total": 1`) {
		t.Fatalf("pre-swap search: %d %s", code, before)
	}
	// Warm the cache, then swap.
	get(t, h, "/search?q=mike&s=1")
	if gen := h.Swap(sysB); gen != 2 {
		t.Fatalf("Swap generation = %d, want 2", gen)
	}
	code, after := get(t, h, "/search?q=mike&s=1")
	if code != 200 || !strings.Contains(after, `"total": 0`) {
		t.Fatalf("post-swap search served stale data: %d %s", code, after)
	}
	code, walter := get(t, h, "/search?q=walter&s=1")
	if code != 200 || !strings.Contains(walter, `"total": 1`) {
		t.Fatalf("post-swap search on new data: %d %s", code, walter)
	}
}

func TestAdminReloadRequiresPOST(t *testing.T) {
	h := testHandler(t)
	rl := NewReloader(h, func() (gks.Searcher, error) {
		t.Fatal("reload must not run for non-POST")
		return nil, nil
	}, nil, nil)
	req := httptest.NewRequest("GET", "/admin/reload", nil)
	rec := httptest.NewRecorder()
	rl.AdminHandler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") != "POST" {
		t.Errorf("Allow header = %q", rec.Header().Get("Allow"))
	}
}

// TestReloadValidationRejectsDamagedSystem covers the second line of
// defense: a snapshot that decodes (checksum intact) but violates
// structural invariants must be rejected before the swap.
func TestReloadValidationRejectsDamagedSystem(t *testing.T) {
	h := testHandler(t)
	rl := NewReloader(h, func() (gks.Searcher, error) {
		return nil, errors.New("load failed deliberately")
	}, nil, nil)
	gen, err := rl.Reload()
	if err == nil {
		t.Fatal("reload succeeded with failing loader")
	}
	if gen != 1 || h.Generation() != 1 {
		t.Fatalf("generation moved on failed reload: returned %d, serving %d", gen, h.Generation())
	}
}
