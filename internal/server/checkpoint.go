// Background checkpointing for WAL-mode ingestion: folding the serving
// state into a durable snapshot so the log can be truncated. The WAL keeps
// every acknowledged mutation replayable; the checkpointer bounds how much
// log a boot has to replay (and how much disk the log occupies) by
// periodically persisting the full snapshot — the expensive write the hot
// path no longer pays — and then dropping the segments it supersedes.
package server

import (
	"context"
	"log"
	"sync"
	"time"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Checkpointer persists the serving system and truncates the superseded
// WAL tail. One checkpointer runs per daemon; Checkpoint is also safe to
// call directly (shutdown, tests) and serializes with the background run.
type Checkpointer struct {
	rl      *Reloader
	wal     *wal.Log
	persist func(gks.Searcher) error
	every   int
	reg     *obs.Registry
	logger  *log.Logger

	mu      sync.Mutex
	pending int    // durable mutations since the last checkpoint
	lastLSN uint64 // highest lsn folded into a snapshot so far
	kick    chan struct{}

	ckptMu   sync.Mutex // serializes Checkpoint bodies
	repackAt float64    // pack-debt threshold for background repacks; 0 disables
}

// NewCheckpointer wires a checkpointer over the reloader's serving state.
// persist writes a Searcher durably (the same function legacy-mode
// ingestion used per mutation) and must be non-nil. every is the number of
// durable mutations that triggers a background checkpoint; 0 means only
// explicit Checkpoint calls (shutdown) fold the log.
func NewCheckpointer(rl *Reloader, l *wal.Log, persist func(gks.Searcher) error, every int, reg *obs.Registry, logger *log.Logger) *Checkpointer {
	return &Checkpointer{
		rl: rl, wal: l, persist: persist, every: every,
		reg: reg, logger: logger,
		kick: make(chan struct{}, 1),
	}
}

// EnableRepack arms background pack maintenance: each checkpoint measures
// the serving system's pack debt (the fraction of the node table that is
// delta-appended or tombstoned; see gks.PackDebt) and, at or past
// threshold, rebuilds a canonically packed system and swaps it into
// service before persisting — so the snapshot that reaches disk is the
// repacked one, and boot never replays onto a bloated table. A threshold
// of 0 (the default) leaves repacking off.
func (c *Checkpointer) EnableRepack(threshold float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repackAt = threshold
}

// LastCheckpointLSN reports the highest LSN folded into a snapshot by
// this process (0 until the first checkpoint; the WAL floor covers what
// previous processes folded).
func (c *Checkpointer) LastCheckpointLSN() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastLSN
}

// Notify records one durable mutation and kicks the background loop once
// the configured threshold accumulates. It is the Ingester's onDurable
// hook: cheap, non-blocking, safe from any goroutine.
func (c *Checkpointer) Notify() {
	c.mu.Lock()
	c.pending++
	fire := c.every > 0 && c.pending >= c.every
	c.mu.Unlock()
	if fire {
		select {
		case c.kick <- struct{}{}:
		default: // a checkpoint is already queued
		}
	}
}

// Run services checkpoint kicks until ctx is canceled, then takes one
// final checkpoint so a clean shutdown leaves an empty (or minimal) log.
func (c *Checkpointer) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			if err := c.Checkpoint(); err != nil && c.logger != nil {
				c.logger.Printf("checkpoint: final checkpoint failed, log retained: %v", err)
			}
			return
		case <-c.kick:
			if err := c.Checkpoint(); err != nil && c.logger != nil {
				c.logger.Printf("checkpoint: failed, log retained: %v", err)
			}
		}
	}
}

// Checkpoint captures the serving system and the log's high-water mark,
// persists the snapshot, and truncates the log records it supersedes — all
// under the serving mutex. Mutations swap and append under that same
// mutex, so the captured snapshot contains exactly the mutations at or
// below the captured lsn; holding it across persist+truncate means a
// concurrent reload (which loads the on-disk snapshot and then replays the
// log, also under rl.mu) can never pair a pre-checkpoint snapshot with a
// post-truncation log and lose the middle. Searches are untouched — they
// read an atomic pointer — and writers stall only for the occasional
// checkpoint instead of paying a snapshot write per mutation. A failed
// persist leaves the log intact: recovery still replays everything.
func (c *Checkpointer) Checkpoint() error {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	start := time.Now()
	c.rl.mu.Lock()
	defer c.rl.mu.Unlock()
	sys := c.rl.h.Searcher()
	lsn := c.wal.LastLSN()

	c.mu.Lock()
	done := lsn == c.lastLSN
	if !done {
		c.pending = 0
	}
	repackAt := c.repackAt
	c.mu.Unlock()
	if done {
		return nil // nothing new since the last checkpoint
	}

	// Pack maintenance rides the checkpoint, still under rl.mu: once the
	// serving table's delta+tombstone debt crosses the threshold, rebuild
	// the canonical pack and swap it into service first, so the snapshot
	// persisted below is the repacked one. Mutations are stalled by the
	// same mutex, so no acknowledged write can miss the rebuilt table.
	repStart := time.Now()
	if next, ok := gks.RepackIfNeeded(sys, repackAt); ok {
		c.rl.h.Swap(next)
		sys = next
		if c.reg != nil {
			c.reg.ObserveRepack(time.Since(repStart))
		}
		if c.logger != nil {
			st := sys.Stats()
			c.logger.Printf("checkpoint: repacked node table in %v, %d document(s) %d element(s)",
				time.Since(repStart).Round(time.Millisecond), st.Documents, st.ElementNodes)
		}
	}
	if c.reg != nil {
		c.reg.SetPackBloat(gks.PackDebt(sys))
	}

	if err := c.persist(sys); err != nil {
		if c.reg != nil {
			c.reg.ObserveCheckpoint(false, 0, time.Since(start))
		}
		return err
	}
	removed, err := c.wal.TruncateThrough(lsn)
	if err != nil {
		if c.reg != nil {
			c.reg.ObserveCheckpoint(false, 0, time.Since(start))
		}
		return err
	}
	c.mu.Lock()
	if lsn > c.lastLSN {
		c.lastLSN = lsn
	}
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.ObserveCheckpoint(true, removed, time.Since(start))
	}
	if c.logger != nil {
		segs, bytes := c.wal.SegmentStats()
		c.logger.Printf("checkpoint: snapshot through lsn %d, %d segment(s) truncated, log now %d segment(s) %d byte(s)",
			lsn, removed, segs, bytes)
	}
	return nil
}
