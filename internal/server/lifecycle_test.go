package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// Graceful shutdown: canceling the serve context (what SIGTERM does via
// signal.NotifyContext in cmd/gksd) must let in-flight requests complete
// while refusing new connections, and ServeListener must return nil on a
// clean drain.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	inflight := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inflight)
		<-release
		io.WriteString(w, "completed")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(ln.Addr().String(), mux, time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ServeListener(ctx, srv, ln, 5*time.Second) }()

	type result struct {
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resc <- result{"", err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{string(b), err}
	}()

	<-inflight // the slow request is being served
	cancel()   // simulate SIGTERM

	// Shutdown has begun: the listener must refuse new connections while
	// the in-flight request is still running.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			break // listener closed
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(release) // let the in-flight request finish
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during graceful shutdown: %v", res.err)
	}
	if res.body != "completed" {
		t.Fatalf("in-flight response = %q, want %q", res.body, "completed")
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeListener returned %v, want nil after clean drain", err)
	}
}

func TestNewHTTPServerTimeouts(t *testing.T) {
	srv := NewHTTPServer(":0", http.NewServeMux(), 10*time.Second)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("server timeouts unset: %+v", srv)
	}
	if srv.WriteTimeout <= 10*time.Second {
		t.Errorf("WriteTimeout %v should exceed the request timeout", srv.WriteTimeout)
	}
	if noReq := NewHTTPServer(":0", nil, 0); noReq.WriteTimeout != 0 {
		t.Errorf("disabled request timeout should leave WriteTimeout unbounded, got %v", noReq.WriteTimeout)
	}
}
