// Package server exposes a GKS system over HTTP with a small JSON API —
// the deployment surface a production XML search service needs. All
// endpoints are read-only GETs against an immutable index, so the handler
// is safe for concurrent use.
//
//	GET /search?q=<query>&s=<threshold>&top=<k>     ranked GKS response
//	GET /insights?q=<query>&s=<threshold>&m=<m>     deeper analytical insights
//	GET /refine?q=<query>&s=<threshold>&top=<k>     query refinement suggestions
//	GET /explain?q=<query>&s=<threshold>            pipeline diagnostics
//	GET /baselines?q=<query>                        SLCA / ELCA answers
//	GET /types?q=<query>&top=<k>                    inferred result types
//	GET /suggest?kw=<keyword>&dist=<d>&top=<k>      did-you-mean candidates
//	GET /schema                                     inferred schema edges
//	GET /stats                                      index statistics
//
// q supports double-quoted phrases; s=0 requests best-effort thresholding.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	gks "repro"
	"repro/internal/cache"
)

// Handler routes the JSON API for one system.
type Handler struct {
	sys       *gks.System
	mux       *http.ServeMux
	respCache *cache.LRU[string, searchJSON]
}

// New builds the HTTP handler for sys.
func New(sys *gks.System) *Handler { return NewWithCache(sys, 0) }

// NewWithCache builds the handler with an LRU memoizing /search responses
// for up to capacity distinct (q, s, top) triples. Search is deterministic
// over an immutable index, so cached responses never go stale within one
// handler's lifetime. capacity <= 0 disables the cache.
func NewWithCache(sys *gks.System, capacity int) *Handler {
	h := &Handler{sys: sys, mux: http.NewServeMux()}
	if capacity > 0 {
		h.respCache = cache.New[string, searchJSON](capacity)
	}
	h.mux.HandleFunc("/search", h.handleSearch)
	h.mux.HandleFunc("/insights", h.handleInsights)
	h.mux.HandleFunc("/refine", h.handleRefine)
	h.mux.HandleFunc("/explain", h.handleExplain)
	h.mux.HandleFunc("/baselines", h.handleBaselines)
	h.mux.HandleFunc("/types", h.handleTypes)
	h.mux.HandleFunc("/suggest", h.handleSuggest)
	h.mux.HandleFunc("/schema", h.handleSchema)
	h.mux.HandleFunc("/stats", h.handleStats)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// resultJSON is the wire form of one response node.
type resultJSON struct {
	ID       string   `json:"id"`
	Label    string   `json:"label"`
	Rank     float64  `json:"rank"`
	Keywords []string `json:"keywords"`
	Entity   bool     `json:"entity"`
}

// searchJSON is the wire form of a response.
type searchJSON struct {
	Query   string       `json:"query"`
	S       int          `json:"s"`
	SLSize  int          `json:"slSize"`
	Total   int          `json:"total"`
	Results []resultJSON `json:"results"`
}

type insightJSON struct {
	Value  string   `json:"value"`
	Path   []string `json:"path"`
	Weight float64  `json:"weight"`
	Count  int      `json:"count"`
}

func (h *Handler) runSearch(r *http.Request) (*gks.Response, error) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	s := intParam(r, "s", 1)
	if s <= 0 {
		return h.sys.SearchBestEffort(q)
	}
	return h.sys.Search(q, s)
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	top := intParam(r, "top", 10)
	cacheKey := fmt.Sprintf("%s|%d|%d", r.URL.Query().Get("q"), intParam(r, "s", 1), top)
	if h.respCache != nil {
		if out, ok := h.respCache.Get(cacheKey); ok {
			writeJSON(w, out)
			return
		}
	}
	resp, err := h.runSearch(r)
	if err != nil {
		httpError(w, err)
		return
	}
	out := searchJSON{
		Query:  resp.Query.String(),
		S:      resp.S,
		SLSize: resp.SLSize,
		Total:  len(resp.Results),
	}
	for i, res := range resp.Results {
		if top > 0 && i >= top {
			break
		}
		out.Results = append(out.Results, resultJSON{
			ID:       res.ID.String(),
			Label:    res.Label,
			Rank:     res.Rank,
			Keywords: resp.KeywordsOf(res),
			Entity:   res.IsEntity,
		})
	}
	if h.respCache != nil {
		h.respCache.Put(cacheKey, out)
	}
	writeJSON(w, out)
}

func (h *Handler) handleInsights(w http.ResponseWriter, r *http.Request) {
	resp, err := h.runSearch(r)
	if err != nil {
		httpError(w, err)
		return
	}
	m := intParam(r, "m", 5)
	var out []insightJSON
	for _, in := range h.sys.Insights(resp, m) {
		out = append(out, insightJSON{
			Value: in.Value, Path: in.Path, Weight: in.Weight, Count: in.Count,
		})
	}
	writeJSON(w, map[string]interface{}{"query": resp.Query.String(), "insights": out})
}

func (h *Handler) handleRefine(w http.ResponseWriter, r *http.Request) {
	resp, err := h.runSearch(r)
	if err != nil {
		httpError(w, err)
		return
	}
	top := intParam(r, "top", 5)
	var out []string
	for _, q := range h.sys.Refinements(resp, top) {
		out = append(out, q.String())
	}
	writeJSON(w, map[string]interface{}{"query": resp.Query.String(), "refinements": out})
}

func (h *Handler) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, fmt.Errorf("missing q parameter"))
		return
	}
	ex, err := h.sys.Explain(q, intParam(r, "s", 1))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"query":            ex.Query.String(),
		"s":                ex.S,
		"postingSizes":     ex.PostingSizes,
		"slSize":           ex.SLSize,
		"blocks":           ex.Blocks,
		"lcpNodes":         ex.LCPNodes,
		"candidates":       ex.Candidates,
		"entityCandidates": ex.EntityCandidates,
		"survivors":        ex.Survivors,
		"mergeMicros":      ex.MergeTime.Microseconds(),
		"scanMicros":       ex.ScanTime.Microseconds(),
		"rankMicros":       ex.RankTime.Microseconds(),
	})
}

func (h *Handler) handleBaselines(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		httpError(w, fmt.Errorf("missing q parameter"))
		return
	}
	q := gks.ParseQuery(raw)
	writeJSON(w, map[string]interface{}{
		"query": q.String(),
		"slca":  orEmpty(h.sys.SLCA(q)),
		"elca":  orEmpty(h.sys.ELCA(q)),
	})
}

func (h *Handler) handleTypes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, fmt.Errorf("missing q parameter"))
		return
	}
	writeJSON(w, map[string]interface{}{
		"query": q,
		"types": h.sys.InferResultTypes(q, intParam(r, "top", 3)),
	})
}

func (h *Handler) handleSuggest(w http.ResponseWriter, r *http.Request) {
	kw := r.URL.Query().Get("kw")
	if kw == "" {
		httpError(w, fmt.Errorf("missing kw parameter"))
		return
	}
	writeJSON(w, map[string]interface{}{
		"keyword":     kw,
		"hasMatches":  h.sys.HasMatches(kw),
		"suggestions": h.sys.Suggest(kw, intParam(r, "dist", 2), intParam(r, "top", 5)),
	})
}

func (h *Handler) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.sys.Schema())
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.sys.Stats())
}

func orEmpty(v []string) []string {
	if v == nil {
		return []string{}
	}
	return v
}

func intParam(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
