// Package server exposes a GKS system over HTTP with a small JSON API —
// the deployment surface a production XML search service needs. All
// endpoints are read-only GETs against an immutable index, so the handler
// is safe for concurrent use.
//
//	GET /search?q=<query>&s=<threshold>&top=<k>     ranked GKS response
//	GET /insights?q=<query>&s=<threshold>&m=<m>     deeper analytical insights
//	GET /refine?q=<query>&s=<threshold>&top=<k>     query refinement suggestions
//	GET /explain?q=<query>&s=<threshold>            pipeline diagnostics
//	GET /baselines?q=<query>                        SLCA / ELCA answers
//	GET /types?q=<query>&top=<k>                    inferred result types
//	GET /suggest?kw=<keyword>&dist=<d>&top=<k>      did-you-mean candidates
//	GET /schema                                     inferred schema edges
//	GET /stats                                      index statistics
//
// q supports double-quoted phrases; s=0 requests best-effort thresholding.
//
// Parameter validation is strict: malformed or negative integer parameters
// are rejected with 400 (never silently defaulted), and top, m, dist, and s
// are clamped to sane upper bounds so no request can demand an unbounded
// response. Unknown paths get a JSON 404 listing the known endpoints;
// non-GET methods get 405. Client mistakes answer 400, internal failures
// 500, and an exceeded request deadline 504.
//
// The handler is plain business logic; production concerns (panic recovery,
// request timeouts, load shedding, metrics, access logs) are layered on via
// the Middleware stack in middleware.go, and lifecycle.go configures the
// http.Server and graceful drain used by cmd/gksd.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	gks "repro"
	"repro/internal/cache"
)

// Upper bounds for integer query parameters. Values above these are clamped,
// keeping every response bounded regardless of what the client asks for.
const (
	maxTop  = 1000 // results / refinements / types returned
	maxS    = 64   // threshold; queries support at most 64 keywords
	maxM    = 1000 // insights returned
	maxDist = 8    // did-you-mean edit distance
)

// Endpoints lists every route the handler serves, sorted; it is returned in
// 404 bodies and used by the metrics middleware to label known paths.
func Endpoints() []string {
	return []string{
		"/baselines", "/explain", "/insights", "/refine",
		"/schema", "/search", "/stats", "/suggest", "/types",
	}
}

// searcherBox wraps the served Searcher in a concrete type so it can live
// behind an atomic.Pointer — the interface itself cannot (atomic.Value
// would additionally panic when a reload swaps between concrete types,
// e.g. a single-index System replaced by a ShardedSystem).
type searcherBox struct{ s gks.Searcher }

// Handler routes the JSON API for one system — a single-index System or a
// sharded set; anything satisfying gks.Searcher. The searcher lives behind
// an atomic pointer so a reload (Swap) can replace the whole index with
// zero downtime: each request loads the pointer once and serves a
// consistent view, while in-flight requests on the previous system finish
// against the immutable index they started with.
type Handler struct {
	sys atomic.Pointer[searcherBox]
	// gen counts snapshot generations, starting at 1 for the boot system
	// and incrementing on every Swap. It is baked into every response-cache
	// key, so entries computed against an old system can never serve a
	// post-swap request — even when a concurrent singleflight populates the
	// cache after the swap lands.
	gen       atomic.Int64
	mux       *http.ServeMux
	respCache *cache.LRU[string, searchJSON]
	flight    cache.Group[string, searchJSON]
	searchObs SearchObserver
}

// SearchObserver receives per-search pipeline measurements from the search
// handlers: one stage observation per pipeline stage plus the merged-list
// size. obs.Registry satisfies it (gks_search_stage_seconds and
// gks_search_sl_entries).
type SearchObserver interface {
	ObserveSearchStage(stage string, seconds float64)
	ObserveSLSize(entries int)
}

// SetSearchObserver wires o into every handler that runs a search. Call it
// before the handler starts serving traffic; cached responses are not
// re-observed (no engine work happens on a cache hit).
func (h *Handler) SetSearchObserver(o SearchObserver) { h.searchObs = o }

// New builds the HTTP handler for sys.
func New(sys gks.Searcher) *Handler { return NewWithCache(sys, 0) }

// NewWithCache builds the handler with an LRU memoizing /search responses
// for up to capacity distinct (q, s, top) triples. Search is deterministic
// over an immutable index, so cached responses never go stale within one
// snapshot generation, and Swap starts a new generation. Responses
// flagged partial (a degraded scatter-gather) are never cached — they
// reflect a transient failure, not the query's answer. capacity <= 0
// disables the cache. Concurrent identical cache misses are coalesced
// through a singleflight group so a popular query cannot stampede the
// engine.
func NewWithCache(sys gks.Searcher, capacity int) *Handler {
	h := &Handler{mux: http.NewServeMux()}
	h.sys.Store(&searcherBox{s: sys})
	h.gen.Store(1)
	if capacity > 0 {
		h.respCache = cache.New[string, searchJSON](capacity)
	}
	h.mux.HandleFunc("/search", h.handleSearch)
	h.mux.HandleFunc("/insights", h.handleInsights)
	h.mux.HandleFunc("/refine", h.handleRefine)
	h.mux.HandleFunc("/explain", h.handleExplain)
	h.mux.HandleFunc("/baselines", h.handleBaselines)
	h.mux.HandleFunc("/types", h.handleTypes)
	h.mux.HandleFunc("/suggest", h.handleSuggest)
	h.mux.HandleFunc("/schema", h.handleSchema)
	h.mux.HandleFunc("/stats", h.handleStats)
	h.mux.HandleFunc("/", h.handleNotFound)
	return h
}

// ServeHTTP implements http.Handler. Every endpoint is a read-only GET;
// other methods answer 405 with an Allow header.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeJSONStatus(w, http.StatusMethodNotAllowed, map[string]any{
			"error": fmt.Sprintf("method %s not allowed; all endpoints are read-only GETs", r.Method),
		})
		return
	}
	h.mux.ServeHTTP(w, r)
}

// CacheStats returns the cumulative response-cache hit/miss counters (zero
// when the cache is disabled) — the source for the obs cache gauges.
func (h *Handler) CacheStats() (hits, misses int64) {
	if h.respCache == nil {
		return 0, 0
	}
	return h.respCache.Stats()
}

// Searcher returns the currently served system.
func (h *Handler) Searcher() gks.Searcher { return h.sys.Load().s }

// Generation returns the snapshot generation being served (1 at boot,
// +1 per successful Swap).
func (h *Handler) Generation() int64 { return h.gen.Load() }

// Swap atomically replaces the served system and invalidates the response
// cache, returning the new generation. Requests already past their pointer
// load finish on the old system (immutable, so always consistent); every
// subsequent request sees the new one. The caller is responsible for
// validating sys before swapping — Swap itself cannot fail, which is what
// gives the reload path its rollback-by-default semantics.
func (h *Handler) Swap(sys gks.Searcher) int64 {
	h.sys.Store(&searcherBox{s: sys})
	gen := h.gen.Add(1)
	if h.respCache != nil {
		h.respCache.Purge()
	}
	return gen
}

// resultJSON is the wire form of one response node.
type resultJSON struct {
	ID       string   `json:"id"`
	Label    string   `json:"label"`
	Rank     float64  `json:"rank"`
	Keywords []string `json:"keywords"`
	Entity   bool     `json:"entity"`
}

// searchJSON is the wire form of a response. Partial is always emitted
// (no omitempty) so clients of a degrade-to-partial deployment can tell a
// complete answer from a degraded one without guessing at absent fields.
type searchJSON struct {
	Query   string       `json:"query"`
	S       int          `json:"s"`
	SLSize  int          `json:"slSize"`
	Total   int          `json:"total"`
	Partial bool         `json:"partial"`
	Results []resultJSON `json:"results"`
}

type insightJSON struct {
	Value  string   `json:"value"`
	Path   []string `json:"path"`
	Weight float64  `json:"weight"`
	Count  int      `json:"count"`
}

// cacheKey builds a collision-proof key for a (gen, q, s, top) tuple. The
// query is quoted so a "|" (or any other delimiter byte) inside q can never
// bleed into the numeric fields or a neighboring key; the generation prefix
// fences off entries from superseded snapshots.
func cacheKey(gen int64, q string, s, top int) string {
	return strconv.FormatInt(gen, 10) + "|" + strconv.Quote(q) + "|" + strconv.Itoa(s) + "|" + strconv.Itoa(top)
}

// search runs one query against sys with ctx-aware cancellation: s <= 0
// requests best-effort thresholding. Engine errors (empty query, too many
// keywords) are client errors; context expiry passes through for the 504
// path. Successful engine runs report their per-stage timings and |S_L| to
// the handler's SearchObserver (cache hits never reach here).
func (h *Handler) search(ctx context.Context, sys gks.Searcher, q string, s int) (*gks.Response, error) {
	var resp *gks.Response
	var err error
	if s <= 0 {
		resp, err = sys.SearchBestEffortContext(ctx, q)
	} else {
		resp, err = sys.SearchContext(ctx, q, s)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		err = badRequest(err)
	}
	if err == nil && resp != nil && h.searchObs != nil {
		h.searchObs.ObserveSearchStage("merge", resp.Stages.Merge.Seconds())
		h.searchObs.ObserveSearchStage("windows", resp.Stages.Windows.Seconds())
		h.searchObs.ObserveSearchStage("lift", resp.Stages.Lift.Seconds())
		h.searchObs.ObserveSearchStage("filter", resp.Stages.Filter.Seconds())
		h.searchObs.ObserveSearchStage("rank", resp.Stages.Rank.Seconds())
		h.searchObs.ObserveSLSize(resp.SLSize)
	}
	return resp, err
}

// searchParams validates the common q/s pair shared by /search, /insights
// and /refine.
func searchParams(r *http.Request) (q string, s int, err error) {
	q = r.URL.Query().Get("q")
	if q == "" {
		return "", 0, badRequest(errors.New("missing q parameter"))
	}
	s, err = intParam(r, "s", 1, maxS)
	return q, s, err
}

func buildSearchJSON(resp *gks.Response, top int) searchJSON {
	out := searchJSON{
		Query:   resp.Query.String(),
		S:       resp.S,
		SLSize:  resp.SLSize,
		Total:   len(resp.Results),
		Partial: resp.Partial,
	}
	for i, res := range resp.Results {
		if i >= top {
			break
		}
		out.Results = append(out.Results, resultJSON{
			ID:       res.ID.String(),
			Label:    res.Label,
			Rank:     res.Rank,
			Keywords: resp.KeywordsOf(res),
			Entity:   res.IsEntity,
		})
	}
	return out
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, s, err := searchParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	top, err := intParam(r, "top", 10, maxTop)
	if err != nil {
		writeError(w, err)
		return
	}
	sys := h.Searcher()
	key := cacheKey(h.gen.Load(), q, s, top)
	if h.respCache != nil {
		if out, ok := h.respCache.Get(key); ok {
			writeJSON(w, out)
			return
		}
	}
	// Coalesce identical concurrent misses: one engine search serves them
	// all, and exactly one goroutine populates the cache.
	out, _, err := h.flight.Do(r.Context(), key, func() (searchJSON, error) {
		resp, err := h.search(r.Context(), sys, q, s)
		if err != nil {
			return searchJSON{}, err
		}
		out := buildSearchJSON(resp, top)
		// A partial response reflects a transient shard failure, not the
		// query's answer: caching it would keep serving degraded results
		// for the rest of the snapshot generation, long after the shard
		// recovers. (The singleflight group only coalesces concurrent
		// callers, so it never outlives the degraded search itself.)
		if h.respCache != nil && !resp.Partial {
			h.respCache.Put(key, out)
		}
		return out, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, out)
}

func (h *Handler) handleInsights(w http.ResponseWriter, r *http.Request) {
	q, s, err := searchParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	m, err := intParam(r, "m", 5, maxM)
	if err != nil {
		writeError(w, err)
		return
	}
	sys := h.Searcher()
	resp, err := h.search(r.Context(), sys, q, s)
	if err != nil {
		writeError(w, err)
		return
	}
	var out []insightJSON
	for _, in := range sys.Insights(resp, m) {
		out = append(out, insightJSON{
			Value: in.Value, Path: in.Path, Weight: in.Weight, Count: in.Count,
		})
	}
	// Insights over a partial response cover only the shards that answered;
	// surface the flag so clients can tell (this payload is never cached, so
	// the degraded result dies with the request).
	writeJSON(w, map[string]interface{}{
		"query":    resp.Query.String(),
		"partial":  resp.Partial,
		"insights": out,
	})
}

func (h *Handler) handleRefine(w http.ResponseWriter, r *http.Request) {
	q, s, err := searchParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	top, err := intParam(r, "top", 5, maxTop)
	if err != nil {
		writeError(w, err)
		return
	}
	sys := h.Searcher()
	resp, err := h.search(r.Context(), sys, q, s)
	if err != nil {
		writeError(w, err)
		return
	}
	var out []string
	for _, rq := range sys.Refinements(resp, top) {
		out = append(out, rq.String())
	}
	// Same partial-visibility contract as /insights: refinements derived
	// from a degraded response are flagged, never cached.
	writeJSON(w, map[string]interface{}{
		"query":       resp.Query.String(),
		"partial":     resp.Partial,
		"refinements": out,
	})
}

func (h *Handler) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, s, err := searchParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if s <= 0 {
		s = 1
	}
	ex, err := h.Searcher().ExplainContext(r.Context(), q, s)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			err = badRequest(err)
		}
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"query":            ex.Query.String(),
		"s":                ex.S,
		"postingSizes":     ex.PostingSizes,
		"slSize":           ex.SLSize,
		"blocks":           ex.Blocks,
		"lcpNodes":         ex.LCPNodes,
		"candidates":       ex.Candidates,
		"entityCandidates": ex.EntityCandidates,
		"survivors":        ex.Survivors,
		"mergeMicros":      ex.MergeTime.Microseconds(),
		"scanMicros":       ex.ScanTime.Microseconds(),
		"rankMicros":       ex.RankTime.Microseconds(),
		"stages": map[string]interface{}{
			"mergeMicros":   ex.Stages.Merge.Microseconds(),
			"windowsMicros": ex.Stages.Windows.Microseconds(),
			"liftMicros":    ex.Stages.Lift.Microseconds(),
			"filterMicros":  ex.Stages.Filter.Microseconds(),
			"rankMicros":    ex.Stages.Rank.Microseconds(),
		},
	})
}

func (h *Handler) handleBaselines(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		clientError(w, errors.New("missing q parameter"))
		return
	}
	q := gks.ParseQuery(raw)
	sys := h.Searcher()
	writeJSON(w, map[string]interface{}{
		"query": q.String(),
		"slca":  orEmpty(sys.SLCA(q)),
		"elca":  orEmpty(sys.ELCA(q)),
	})
}

func (h *Handler) handleTypes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		clientError(w, errors.New("missing q parameter"))
		return
	}
	top, err := intParam(r, "top", 3, maxTop)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"query": q,
		"types": h.Searcher().InferResultTypes(q, top),
	})
}

func (h *Handler) handleSuggest(w http.ResponseWriter, r *http.Request) {
	kw := r.URL.Query().Get("kw")
	if kw == "" {
		clientError(w, errors.New("missing kw parameter"))
		return
	}
	dist, err := intParam(r, "dist", 2, maxDist)
	if err != nil {
		writeError(w, err)
		return
	}
	top, err := intParam(r, "top", 5, maxTop)
	if err != nil {
		writeError(w, err)
		return
	}
	sys := h.Searcher()
	writeJSON(w, map[string]interface{}{
		"keyword":     kw,
		"hasMatches":  sys.HasMatches(kw),
		"suggestions": sys.Suggest(kw, dist, top),
	})
}

func (h *Handler) handleSchema(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.Searcher().Schema())
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.Searcher().Stats())
}

func (h *Handler) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeJSONStatus(w, http.StatusNotFound, map[string]any{
		"error":     fmt.Sprintf("unknown endpoint %q", r.URL.Path),
		"endpoints": Endpoints(),
	})
}

func orEmpty(v []string) []string {
	if v == nil {
		return []string{}
	}
	return v
}

// intParam parses an integer query parameter strictly: absent returns def;
// malformed or negative values are a 400-class error; values above max are
// clamped. Rejecting negatives closes the top=-1 hole that used to disable
// result truncation entirely.
func intParam(r *http.Request, name string, def, max int) (int, error) {
	vals := r.URL.Query()
	if !vals.Has(name) {
		return def, nil
	}
	v := vals.Get(name)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest(fmt.Errorf("invalid %s parameter %q: not an integer", name, v))
	}
	if n < 0 {
		return 0, badRequest(fmt.Errorf("invalid %s parameter %d: must be non-negative", name, n))
	}
	if n > max {
		n = max
	}
	return n, nil
}

// statusError carries an HTTP status with an underlying error so handlers
// can classify failures once and writeError can render them uniformly.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// badRequest marks err as the client's fault (HTTP 400).
func badRequest(err error) error { return &statusError{http.StatusBadRequest, err} }

// writeError renders err with the right status class: explicit statusError
// codes win; context expiry maps to 504; everything else is an internal 500.
// Client mistakes must never surface as 500s, and internal failures must
// never masquerade as 400s.
func writeError(w http.ResponseWriter, err error) {
	var se *statusError
	switch {
	case errors.As(err, &se):
		writeJSONStatus(w, se.code, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSONStatus(w, http.StatusGatewayTimeout, map[string]string{"error": "request timed out"})
	default:
		serverError(w, err)
	}
}

// clientError answers 400 for malformed requests (missing/invalid params,
// query parse failures).
func clientError(w http.ResponseWriter, err error) {
	writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// serverError answers 500 for internal failures.
func serverError(w http.ResponseWriter, err error) {
	writeJSONStatus(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
