package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer returns an http.Server with production timeouts configured,
// replacing the bare http.ListenAndServe a slow-loris client could starve:
// ReadHeaderTimeout bounds header arrival, ReadTimeout the full request
// read, IdleTimeout reclaims keep-alive connections, and WriteTimeout
// allows the per-request handler timeout plus margin for writing the
// response (unbounded writes when reqTimeout <= 0, i.e. the handler
// timeout is disabled).
func NewHTTPServer(addr string, h http.Handler, reqTimeout time.Duration) *http.Server {
	writeTimeout := time.Duration(0)
	if reqTimeout > 0 {
		writeTimeout = reqTimeout + 5*time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve listens on srv.Addr and runs until ctx is canceled (e.g. by
// SIGINT/SIGTERM via signal.NotifyContext), then drains gracefully: the
// listener closes immediately while in-flight requests get up to grace to
// complete. Returns nil on a clean drain.
func Serve(ctx context.Context, srv *http.Server, grace time.Duration) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, srv, ln, grace)
}

// ServeListener is Serve over an existing listener — the testable core, and
// the entry point when the caller needs the bound address (e.g. ":0").
func ServeListener(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		err := srv.Shutdown(sctx)
		<-errc // srv.Serve has returned http.ErrServerClosed
		return err
	}
}
