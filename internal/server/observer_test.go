package server

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSearchObserverRecordsStagesAndSLSize wires an obs.Registry into the
// handler and checks that a real search reports all five pipeline stages
// plus the merged-list size, while a response served from cache does not
// re-observe.
func TestSearchObserverRecordsStagesAndSLSize(t *testing.T) {
	h := NewWithCache(testSystem(t), 8)
	reg := obs.NewRegistry()
	h.SetSearchObserver(reg)

	if code, body := get(t, h, "/search?q=karen+mining&s=1"); code != 200 {
		t.Fatalf("search: %d %s", code, body)
	}
	stages := reg.SearchStageStats()
	for _, stage := range []string{"merge", "windows", "lift", "filter", "rank"} {
		if stages[stage] != 1 {
			t.Errorf("stage %q observed %d times, want 1 (all: %v)", stage, stages[stage], stages)
		}
	}
	if n := reg.SLSizeCount(); n != 1 {
		t.Errorf("SL size observed %d times, want 1", n)
	}

	// A cache hit performs no engine work, so nothing new is observed.
	if code, body := get(t, h, "/search?q=karen+mining&s=1"); code != 200 {
		t.Fatalf("cached search: %d %s", code, body)
	}
	if stages := reg.SearchStageStats(); stages["merge"] != 1 {
		t.Errorf("cache hit re-observed stages: %v", stages)
	}

	// Insights and refine run searches too (different queries bypass the
	// /search cache path entirely).
	if code, body := get(t, h, "/insights?q=karen&s=1"); code != 200 {
		t.Fatalf("insights: %d %s", code, body)
	}
	if code, body := get(t, h, "/refine?q=mining&s=1"); code != 200 {
		t.Fatalf("refine: %d %s", code, body)
	}
	if stages := reg.SearchStageStats(); stages["merge"] != 3 {
		t.Errorf("merge observed %d times after insights+refine, want 3", stages["merge"])
	}
	if n := reg.SLSizeCount(); n != 3 {
		t.Errorf("SL size observed %d times, want 3", n)
	}
}

// TestExplainIncludesStages checks the /explain payload carries the
// per-stage breakdown alongside the legacy coarse timings.
func TestExplainIncludesStages(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/explain?q=karen+mining&s=1")
	if code != 200 {
		t.Fatalf("explain: %d %s", code, body)
	}
	for _, field := range []string{"\"stages\"", "\"windowsMicros\"", "\"liftMicros\"", "\"filterMicros\""} {
		if !strings.Contains(body, field) {
			t.Errorf("explain body missing %s: %s", field, body)
		}
	}
}
