package server

import (
	"fmt"
	"log"
	"net/http"
	"sync"

	gks "repro"
	"repro/internal/obs"
)

// Reloader owns zero-downtime snapshot replacement: the transition from
// one index generation to the next. It loads and validates a fresh system
// completely off the request path, then swaps it behind the Handler's
// atomic pointer. Because the swap is the final, infallible step, any
// failure — unreadable file, ErrCorrupt checksum mismatch, structural
// validation — simply leaves the previous system serving: rollback is the
// default, not a recovery action.
//
// Two triggers share one Reloader (serialized by its mutex): the
// POST /admin/reload endpoint and SIGHUP in cmd/gksd.
type Reloader struct {
	mu     sync.Mutex
	h      *Handler
	load   func() (gks.Searcher, error)
	reg    *obs.Registry // optional; reload counters and generation gauge
	logger *log.Logger   // optional
}

// NewReloader builds a Reloader for h. load produces the candidate system —
// typically gks.LoadIndexFile (or gks.LoadShardSet for a sharded daemon)
// on the same path the daemon booted from, so an operator can drop a new
// snapshot in place and reload. A shard-set load is all-or-nothing, so a
// reload can never swap in a mix of old and new shards. reg and logger
// may be nil.
func NewReloader(h *Handler, load func() (gks.Searcher, error), reg *obs.Registry, logger *log.Logger) *Reloader {
	return &Reloader{h: h, load: load, reg: reg, logger: logger}
}

// Reload loads, validates and swaps in a new system, returning the
// generation now serving. On failure the previous system keeps serving
// untouched and the error describes why the candidate was rejected.
// Concurrent reloads are serialized; searches are never blocked.
func (rl *Reloader) Reload() (int64, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()

	sys, err := rl.load()
	if err == nil {
		err = sys.ValidateIndex()
	}
	if err != nil {
		gen := rl.h.Generation()
		if rl.reg != nil {
			rl.reg.ObserveReload(false, gen)
		}
		if rl.logger != nil {
			rl.logger.Printf("reload failed, still serving generation %d: %v", gen, err)
		}
		return gen, fmt.Errorf("reload: %w", err)
	}

	gen := rl.h.Swap(sys)
	if rl.reg != nil {
		rl.reg.ObserveReload(true, gen)
	}
	if rl.logger != nil {
		st := sys.Stats()
		rl.logger.Printf("reloaded snapshot: generation %d now serving %d document(s), %d elements",
			gen, st.Documents, st.ElementNodes)
	}
	return gen, nil
}

// AdminHandler serves POST /admin/reload. A successful reload answers 200
// with the new generation and basic index stats; a rejected candidate
// answers 500 with the error and the generation still serving. Non-POST
// methods answer 405 — reloads mutate serving state and must never be
// triggerable by a stray GET.
func (rl *Reloader) AdminHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeJSONStatus(w, http.StatusMethodNotAllowed, map[string]any{
				"error": "reload requires POST",
			})
			return
		}
		gen, err := rl.Reload()
		if err != nil {
			writeJSONStatus(w, http.StatusInternalServerError, map[string]any{
				"error":      err.Error(),
				"generation": gen,
				"rolledBack": true,
			})
			return
		}
		st := rl.h.Searcher().Stats()
		writeJSON(w, map[string]any{
			"generation": gen,
			"documents":  st.Documents,
			"elements":   st.ElementNodes,
		})
	})
}
