package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func doReq(h http.Handler, url string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestRecoveryMiddlewarePanicTo500(t *testing.T) {
	reg := obs.NewRegistry()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}), WithMetrics(reg), WithRecovery(reg, discardLogger()))

	rec := doReq(h, "/search?q=x")
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body not JSON: %v", err)
	}
	if _, _, panics, _ := reg.Snapshot(); panics != 1 {
		t.Errorf("panic counter = %d, want 1", panics)
	}
}

func TestRecoveryThroughTimeoutGoroutine(t *testing.T) {
	// A panic inside WithTimeout's handler goroutine must be re-raised and
	// still land in WithRecovery instead of killing the process.
	reg := obs.NewRegistry()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("inside timeout")
	}), WithRecovery(reg, discardLogger()), WithTimeout(time.Second))

	rec := doReq(h, "/x")
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if _, _, panics, _ := reg.Snapshot(); panics != 1 {
		t.Errorf("panic counter = %d, want 1", panics)
	}
}

func TestTimeoutMiddleware504(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // deadline propagated to the handler
		case <-time.After(5 * time.Second):
		}
		w.Write([]byte("too late"))
	}), WithTimeout(20*time.Millisecond))

	start := time.Now()
	rec := doReq(h, "/slow")
	if rec.Code != 504 {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "too late") {
		t.Error("timed-out handler output leaked into the response")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not fire promptly")
	}
}

func TestTimeoutMiddlewareFastPathUntouched(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(201)
		w.Write([]byte("fast"))
	}), WithTimeout(time.Second))

	rec := doReq(h, "/fast")
	if rec.Code != 201 || rec.Body.String() != "fast" || rec.Header().Get("X-Custom") != "yes" {
		t.Errorf("buffered response mangled: %d %q %q", rec.Code, rec.Body.String(), rec.Header().Get("X-Custom"))
	}
}

func TestLimitMiddlewareSheds503(t *testing.T) {
	reg := obs.NewRegistry()
	enter := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enter <- struct{}{}
		<-release
		w.Write([]byte("ok"))
	}), WithLimit(1, reg))

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- doReq(h, "/a") }()
	<-enter // first request now holds the only slot

	rec := doReq(h, "/b")
	if rec.Code != 503 {
		t.Fatalf("overflow status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}
	close(release)
	if first := <-done; first.Code != 200 {
		t.Errorf("in-flight request status %d, want 200", first.Code)
	}
	if _, _, _, shed := reg.Snapshot(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
	// The slot must be reusable after the first request drains.
	reuse := make(chan *httptest.ResponseRecorder, 1)
	go func() { reuse <- doReq(h, "/c") }()
	<-enter // release is already closed, so the handler completes
	if rec := <-reuse; rec.Code != 200 {
		t.Errorf("slot not released: status %d, want 200", rec.Code)
	}
}

func TestMetricsMiddlewareExport(t *testing.T) {
	reg := obs.NewRegistry()
	api := testHandler(t)
	h := Chain(api, WithMetrics(reg))

	doReq(h, "/search?q=karen&s=1")
	doReq(h, "/search?q=karen&top=-1") // 400
	doReq(h, "/stats")
	doReq(h, "/definitely-not-real") // 404 → endpoint label "other"

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`gks_http_requests_total{endpoint="/search"} 2`,
		`gks_http_requests_total{endpoint="/stats"} 1`,
		`gks_http_requests_total{endpoint="other"} 1`,
		`gks_http_errors_total{endpoint="/search",code="400"} 1`,
		`gks_http_errors_total{endpoint="other",code="404"} 1`,
		`gks_http_request_duration_seconds_count{endpoint="/search"} 2`,
		`gks_http_request_duration_seconds_bucket{endpoint="/search",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

// Full production stack under -race: concurrent traffic through metrics,
// recovery, limiter, timeout, shared cache and singleflight.
func TestFullStackConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	api := NewWithCache(testSystem(t), 64)
	reg.SetCacheStats(api.CacheStats)
	h := Chain(api,
		WithMetrics(reg),
		WithRecovery(reg, discardLogger()),
		WithLimit(128, reg),
		WithTimeout(time.Second),
	)

	urls := []string{
		"/search?q=karen+mike&s=2",
		"/search?q=karen&s=1",
		"/insights?q=mike&s=1",
		"/stats",
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doReq(h, urls[i%len(urls)])
			if rec.Code != 200 {
				t.Errorf("%s: status %d", urls[i%len(urls)], rec.Code)
			}
		}(i)
	}
	wg.Wait()
	if requests, errs, _, _ := reg.Snapshot(); requests != 64 || errs != 0 {
		t.Errorf("metrics saw %d requests / %d errors, want 64 / 0", requests, errs)
	}
}
