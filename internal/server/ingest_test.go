package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gks "repro"
	"repro/internal/obs"
)

// ingestStack assembles the full mutation stack the daemon wires up: an
// API handler, a reloader re-reading the snapshot path, and an ingester
// persisting every mutation to that same path.
func ingestStack(t *testing.T, path string) (*Handler, *Reloader, *Ingester, *obs.Registry) {
	t.Helper()
	sys := testSystem(t)
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 16)
	reg := obs.NewRegistry()
	rl := NewReloader(h, func() (gks.Searcher, error) { return gks.LoadIndexFile(path) }, reg, nil)
	persist := func(next gks.Searcher) error {
		single, ok := next.(*gks.System)
		if !ok {
			return fmt.Errorf("not a single-index system: %T", next)
		}
		return single.SaveIndexFile(path)
	}
	return h, rl, NewIngester(rl, persist, reg, nil), reg
}

func adminReq(t *testing.T, h http.Handler, method, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func docBody(name string, words ...string) string {
	src := "<root>"
	for _, w := range words {
		src += "<item>" + w + "</item>"
	}
	src += "</root>"
	b, _ := json.Marshal(map[string]string{"name": name, "xml": src})
	return string(b)
}

func searchTotal(t *testing.T, h *Handler, q string) int {
	t.Helper()
	code, body := get(t, h, "/search?q="+q+"&s=1")
	if code != 200 {
		t.Fatalf("search %q: status %d: %s", q, code, body)
	}
	var out struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	return out.Total
}

// TestIngestLifecycle drives add → search → replace → search → delete →
// search → reload through the HTTP surface, checking after every step that
// the serving system AND the persisted snapshot agree.
func TestIngestLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.gksidx")
	h, rl, ing, _ := ingestStack(t, path)
	hnd := ing.Handler()
	genBefore := h.Generation()

	// Add: searchable immediately, acknowledged as persisted.
	code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody("p.xml", "neutrino", "quark"))
	if code != 200 {
		t.Fatalf("add: status %d: %s", code, body)
	}
	var ack struct {
		Op        string `json:"op"`
		Name      string `json:"name"`
		Documents int    `json:"documents"`
		Persisted bool   `json:"persisted"`
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatalf("bad ack: %v\n%s", err, body)
	}
	if ack.Op != "add" || ack.Name != "p.xml" || ack.Documents != 2 || !ack.Persisted {
		t.Fatalf("ack = %+v", ack)
	}
	if h.Generation() != genBefore+1 {
		t.Fatalf("generation = %d, want %d", h.Generation(), genBefore+1)
	}
	if n := searchTotal(t, h, "neutrino"); n == 0 {
		t.Fatal("added document not searchable")
	}

	// Replace: same name, new content.
	code, body = adminReq(t, hnd, "POST", "/admin/docs", docBody("p.xml", "gluon", "quark"))
	if code != 200 {
		t.Fatalf("replace: status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil || ack.Op != "replace" || ack.Documents != 2 {
		t.Fatalf("replace ack = %+v (err %v): %s", ack, err, body)
	}
	if searchTotal(t, h, "neutrino") != 0 || searchTotal(t, h, "gluon") == 0 {
		t.Fatal("replace did not swap the document content")
	}

	// The mutation survives a reload: what reload reads is what ingest wrote.
	if _, err := rl.Reload(); err != nil {
		t.Fatal(err)
	}
	if searchTotal(t, h, "gluon") == 0 {
		t.Fatal("persisted mutation lost across reload")
	}

	// Delete: gone from serving and from the snapshot.
	code, body = adminReq(t, hnd, "DELETE", "/admin/docs/p.xml", "")
	if code != 200 {
		t.Fatalf("delete: status %d: %s", code, body)
	}
	if searchTotal(t, h, "gluon") != 0 {
		t.Fatal("deleted document still searchable")
	}
	if _, err := rl.Reload(); err != nil {
		t.Fatal(err)
	}
	if searchTotal(t, h, "gluon") != 0 {
		t.Fatal("delete was not persisted")
	}
	// The original corpus still serves.
	if searchTotal(t, h, "karen") == 0 {
		t.Fatal("original document lost")
	}
}

// TestIngestShardManifest runs the same lifecycle against a sharded system
// persisted through its GKSM1 manifest.
func TestIngestShardManifest(t *testing.T) {
	mk := func(name, word string) *gks.Document {
		return gks.BuildDocument(name, gks.E("root",
			gks.ET("item", word), gks.ET("item", "shared")))
	}
	set, err := gks.IndexDocumentsSharded(2, mk("a.xml", "alpha"), mk("b.xml", "beta"), mk("c.xml", "gamma"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live.gksm")
	if err := set.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	sys, err := gks.LoadShardSet(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 16)
	reg := obs.NewRegistry()
	rl := NewReloader(h, func() (gks.Searcher, error) { return gks.LoadShardSet(path) }, reg, nil)
	ing := NewIngester(rl, func(next gks.Searcher) error {
		return next.(*gks.ShardedSystem).SaveManifest(path)
	}, reg, nil)
	hnd := ing.Handler()

	if code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody("d.xml", "delta", "shared")); code != 200 {
		t.Fatalf("add: status %d: %s", code, body)
	}
	if searchTotal(t, h, "delta") == 0 {
		t.Fatal("added document not searchable on the sharded system")
	}
	if _, err := rl.Reload(); err != nil {
		t.Fatal(err)
	}
	if searchTotal(t, h, "delta") == 0 {
		t.Fatal("sharded mutation lost across manifest reload")
	}
	if code, body := adminReq(t, hnd, "DELETE", "/admin/docs/a.xml", ""); code != 200 {
		t.Fatalf("delete: status %d: %s", code, body)
	}
	if searchTotal(t, h, "alpha") != 0 {
		t.Fatal("deleted document still searchable")
	}
	if _, err := rl.Reload(); err != nil {
		t.Fatal(err)
	}
	if searchTotal(t, h, "alpha") != 0 || searchTotal(t, h, "delta") == 0 {
		t.Fatal("manifest does not reflect the mutation history")
	}
}

// TestIngestPersistFailure: when the snapshot write fails, the mutation
// must NOT serve — acknowledge-after-persist is the durability contract.
func TestIngestPersistFailure(t *testing.T) {
	sys := testSystem(t)
	h := New(sys)
	reg := obs.NewRegistry()
	rl := NewReloader(h, func() (gks.Searcher, error) { return sys, nil }, reg, nil)
	ing := NewIngester(rl, func(gks.Searcher) error {
		return fmt.Errorf("disk full")
	}, reg, nil)
	genBefore := h.Generation()

	code, body := adminReq(t, ing.Handler(), "POST", "/admin/docs", docBody("p.xml", "neutrino"))
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", code, body)
	}
	if h.Generation() != genBefore {
		t.Fatal("failed persist still swapped the system")
	}
	if searchTotal(t, h, "neutrino") != 0 {
		t.Fatal("unpersisted document is serving")
	}
	if ok, fail, _ := reg.IngestStats(); ok != 0 || fail != 1 {
		t.Fatalf("ingest stats ok=%d fail=%d, want 0/1", ok, fail)
	}
}

func TestIngestRequestValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.gksidx")
	h, _, ing, _ := ingestStack(t, path)
	hnd := ing.Handler()
	genBefore := h.Generation()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"get on collection", "GET", "/admin/docs", "", 405},
		{"post on item", "POST", "/admin/docs/x.xml", "{}", 405},
		{"malformed json", "POST", "/admin/docs", "{not json", 400},
		{"unknown field", "POST", "/admin/docs", `{"name":"a","xml":"<r/>","evil":1}`, 400},
		{"trailing garbage", "POST", "/admin/docs", `{"name":"a","xml":"<r><i>x</i></r>"} extra`, 400},
		{"empty name", "POST", "/admin/docs", `{"name":"  ","xml":"<r><i>x</i></r>"}`, 400},
		{"control char name", "POST", "/admin/docs", `{"name":"a\nb","xml":"<r><i>x</i></r>"}`, 400},
		{"empty xml", "POST", "/admin/docs", `{"name":"a.xml","xml":""}`, 400},
		{"unparsable xml", "POST", "/admin/docs", `{"name":"a.xml","xml":"<open"}`, 400},
		{"delete missing", "DELETE", "/admin/docs/nosuch.xml", "", 404},
		{"delete last", "DELETE", "/admin/docs/uni.xml", "", 409},
	}
	for _, tc := range cases {
		if code, body := adminReq(t, hnd, tc.method, tc.path, tc.body); code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, code, tc.want, body)
		}
	}
	// Oversized bodies are rejected before parsing.
	ing.maxBody = 64
	if code, _ := adminReq(t, hnd, "POST", "/admin/docs", docBody("big.xml", "padpadpadpadpadpadpadpadpadpad")); code != http.StatusRequestEntityTooLarge {
		t.Error("oversized body not rejected with 413")
	}
	if h.Generation() != genBefore {
		t.Fatal("a rejected request mutated serving state")
	}
}

func TestIngestMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.gksidx")
	_, _, ing, reg := ingestStack(t, path)
	hnd := ing.Handler()

	adminReq(t, hnd, "POST", "/admin/docs", docBody("m.xml", "muon"))
	adminReq(t, hnd, "DELETE", "/admin/docs/m.xml", "")
	adminReq(t, hnd, "DELETE", "/admin/docs/m.xml", "") // 404 → failure

	ok, fail, docs := reg.IngestStats()
	if ok != 2 || fail != 1 || docs != 1 {
		t.Fatalf("ingest stats ok=%d fail=%d docs=%d, want 2/1/1", ok, fail, docs)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`gks_ingest_total{op="upsert",result="success"} 1`,
		`gks_ingest_total{op="delete",result="success"} 1`,
		`gks_ingest_total{op="delete",result="failure"} 1`,
		"gks_docs 1",
		"gks_ingest_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestIngestUnderTraffic races search traffic against a stream of HTTP
// mutations (run with -race): every search must answer 200 on a complete,
// consistent snapshot — zero failed requests.
func TestIngestUnderTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.gksidx")
	h, _, ing, _ := ingestStack(t, path)
	hnd := ing.Handler()

	stop := make(chan struct{})
	var searches, failures atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{"/search?q=karen&s=1", "/search?q=neutrino&s=1", "/stats"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", queries[(i+r)%len(queries)], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					failures.Add(1)
					t.Errorf("search under mutation: status %d: %s", rec.Code, rec.Body.String())
					return
				}
				searches.Add(1)
			}
		}(r)
	}

	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("t-%d.xml", i%5)
		if i%3 == 2 {
			code, body := adminReq(t, hnd, "DELETE", "/admin/docs/"+name, "")
			if code != 200 && code != 404 {
				t.Fatalf("delete %s: status %d: %s", name, code, body)
			}
		} else {
			if code, body := adminReq(t, hnd, "POST", "/admin/docs", docBody(name, "neutrino", fmt.Sprintf("w%d", i))); code != 200 {
				t.Fatalf("upsert %s: status %d: %s", name, code, body)
			}
		}
		runtime.Gosched()
	}
	for deadline := time.Now().Add(5 * time.Second); searches.Load() < 10 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if searches.Load() == 0 || failures.Load() != 0 {
		t.Fatalf("searches=%d failures=%d", searches.Load(), failures.Load())
	}
}

// TestInsightsRefineCarryPartialFlag: /insights and /refine used to drop
// Response.Partial entirely — a degraded scatter-gather looked complete.
func TestInsightsRefineCarryPartialFlag(t *testing.T) {
	ps := &partialSearcher{Searcher: testSystem(t)}
	ps.degraded.Store(true)
	h := New(ps)
	for _, path := range []string{"/insights?q=karen&s=1", "/refine?q=karen&s=1"} {
		code, body := get(t, h, path)
		if code != 200 {
			t.Fatalf("%s: status %d: %s", path, code, body)
		}
		var out struct {
			Partial *bool `json:"partial"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", path, err, body)
		}
		if out.Partial == nil || !*out.Partial {
			t.Fatalf("%s: degraded response not flagged partial: %s", path, body)
		}
	}
	ps.degraded.Store(false)
	for _, path := range []string{"/insights?q=karen&s=1", "/refine?q=karen&s=1"} {
		_, body := get(t, h, path)
		var out struct {
			Partial *bool `json:"partial"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", path, err, body)
		}
		if out.Partial == nil || *out.Partial {
			t.Fatalf("%s: complete response mis-flagged: %s", path, body)
		}
	}
}

// FuzzAdminDocs guards the admin parser: arbitrary bytes must never panic
// it, and anything it accepts must satisfy the documented invariants.
func FuzzAdminDocs(f *testing.F) {
	f.Add([]byte(`{"name":"a.xml","xml":"<r><i>x</i></r>"}`))
	f.Add([]byte(`{"name":"","xml":""}`))
	f.Add([]byte("{\"name\":\"a\x00b\",\"xml\":\"<r/>\"}"))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"a","xml":"<r/>","extra":1}`))
	f.Add([]byte(`{"name":"a","xml":"<r/>"} trailing`))
	f.Add([]byte(`{"name":"` + strings.Repeat("n", 600) + `","xml":"<r/>"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		name, src, err := parseDocRequest(body)
		if err != nil {
			if name != "" || src != "" {
				t.Fatalf("error %v returned non-empty name/src %q/%q", err, name, src)
			}
			return
		}
		if strings.TrimSpace(name) == "" || len(name) > 512 ||
			strings.ContainsAny(name, "\x00\n\r") {
			t.Fatalf("accepted invalid name %q", name)
		}
		if strings.TrimSpace(src) == "" {
			t.Fatal("accepted empty xml")
		}
	})
}
