package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	gks "repro"
)

func testHandler(t *testing.T) *Handler {
	t.Helper()
	doc := gks.BuildDocument("uni.xml", gks.E("Dept",
		gks.ET("Dept_Name", "CS"),
		gks.E("Area",
			gks.ET("Name", "Databases"),
			gks.E("Courses",
				gks.E("Course",
					gks.ET("Name", "Data Mining"),
					gks.E("Students",
						gks.ET("Student", "Karen"),
						gks.ET("Student", "Mike"),
					),
				),
				gks.E("Course",
					gks.ET("Name", "Algorithms"),
					gks.E("Students",
						gks.ET("Student", "Karen"),
						gks.ET("Student", "Julie"),
					),
				),
			),
		),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	return New(sys)
}

func get(t *testing.T, h *Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestSearchEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/search?q=karen+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Query   string `json:"query"`
		S       int    `json:"s"`
		Total   int    `json:"total"`
		SLSize  int    `json:"slSize"`
		Results []struct {
			ID     string  `json:"id"`
			Label  string  `json:"label"`
			Rank   float64 `json:"rank"`
			Entity bool    `json:"entity"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Total != 1 || len(out.Results) != 1 {
		t.Fatalf("results = %+v", out)
	}
	if out.Results[0].Label != "Course" || !out.Results[0].Entity {
		t.Errorf("result = %+v", out.Results[0])
	}
}

func TestSearchBestEffortViaS0(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/search?q=karen+julie+mike&s=0")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var out struct {
		S int `json:"s"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.S < 2 {
		t.Errorf("best-effort s = %d, want >= 2", out.S)
	}
}

func TestSearchTopParameter(t *testing.T) {
	h := testHandler(t)
	_, body := get(t, h, "/search?q=karen&s=1&top=1")
	var out struct {
		Total   int           `json:"total"`
		Results []interface{} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total < 2 || len(out.Results) != 1 {
		t.Errorf("top truncation failed: total=%d printed=%d", out.Total, len(out.Results))
	}
}

func TestInsightsEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/insights?q=karen&s=1&m=3")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Data Mining") && !strings.Contains(body, "Algorithms") {
		t.Errorf("insights missing course names: %s", body)
	}
}

func TestRefineEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/refine?q=karen+julie+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "refinements") {
		t.Errorf("refine body: %s", body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/explain?q=karen+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"slSize", "blocks", "survivors"} {
		if _, ok := out[key]; !ok {
			t.Errorf("explain missing %q: %s", key, body)
		}
	}
}

func TestBaselinesEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/baselines?q=karen+mike")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "slca") || !strings.Contains(body, "elca") {
		t.Errorf("baselines body: %s", body)
	}
}

func TestSchemaAndStatsEndpoints(t *testing.T) {
	h := testHandler(t)
	if code, body := get(t, h, "/schema"); code != 200 || !strings.Contains(body, "Student") {
		t.Errorf("schema: %d %s", code, body)
	}
	if code, body := get(t, h, "/stats"); code != 200 || !strings.Contains(body, "EntityNodes") {
		t.Errorf("stats: %d %s", code, body)
	}
}

func TestMissingQuery(t *testing.T) {
	h := testHandler(t)
	for _, url := range []string{"/search", "/insights", "/refine", "/explain", "/baselines"} {
		if code, _ := get(t, h, url); code != 400 {
			t.Errorf("%s without q: status %d, want 400", url, code)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	// The index is immutable; concurrent searches must be race-free
	// (validated under -race in CI).
	h := testHandler(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			urls := []string{
				"/search?q=karen&s=1",
				"/insights?q=mike&s=1",
				"/baselines?q=karen+mike",
				"/stats",
			}
			code, _ := get(t, h, urls[i%len(urls)])
			if code != 200 {
				t.Errorf("concurrent request failed: %d", code)
			}
		}(i)
	}
	wg.Wait()
}

func TestTypesEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/types?q=karen+mike&top=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Course") {
		t.Errorf("types body: %s", body)
	}
	if code, _ := get(t, h, "/types"); code != 400 {
		t.Errorf("missing q: %d", code)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/suggest?kw=karne")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "karen") {
		t.Errorf("suggest body: %s", body)
	}
	if code, _ := get(t, h, "/suggest"); code != 400 {
		t.Errorf("missing kw: %d", code)
	}
}

func TestCachedSearch(t *testing.T) {
	doc := gks.BuildDocument("c.xml", gks.E("r",
		gks.E("item", gks.ET("name", "widget"), gks.ET("color", "red")),
		gks.E("item", gks.ET("name", "gadget"), gks.ET("color", "red")),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 8)
	first := ""
	for i := 0; i < 3; i++ {
		code, body := get(t, h, "/search?q=red&s=1")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		if i == 0 {
			first = body
		} else if body != first {
			t.Fatal("cached response differs from first response")
		}
	}
	// Different parameters bypass the cached entry.
	_, other := get(t, h, "/search?q=red&s=1&top=1")
	if other == first {
		t.Error("top parameter must key the cache")
	}
}
