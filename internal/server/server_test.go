package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	gks "repro"
)

func testSystem(t *testing.T) *gks.System {
	t.Helper()
	doc := gks.BuildDocument("uni.xml", gks.E("Dept",
		gks.ET("Dept_Name", "CS"),
		gks.E("Area",
			gks.ET("Name", "Databases"),
			gks.E("Courses",
				gks.E("Course",
					gks.ET("Name", "Data Mining"),
					gks.E("Students",
						gks.ET("Student", "Karen"),
						gks.ET("Student", "Mike"),
					),
				),
				gks.E("Course",
					gks.ET("Name", "Algorithms"),
					gks.E("Students",
						gks.ET("Student", "Karen"),
						gks.ET("Student", "Julie"),
					),
				),
			),
		),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testHandler(t *testing.T) *Handler {
	t.Helper()
	return New(testSystem(t))
}

func get(t *testing.T, h *Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestSearchEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/search?q=karen+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Query   string `json:"query"`
		S       int    `json:"s"`
		Total   int    `json:"total"`
		SLSize  int    `json:"slSize"`
		Results []struct {
			ID     string  `json:"id"`
			Label  string  `json:"label"`
			Rank   float64 `json:"rank"`
			Entity bool    `json:"entity"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Total != 1 || len(out.Results) != 1 {
		t.Fatalf("results = %+v", out)
	}
	if out.Results[0].Label != "Course" || !out.Results[0].Entity {
		t.Errorf("result = %+v", out.Results[0])
	}
}

func TestSearchBestEffortViaS0(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/search?q=karen+julie+mike&s=0")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var out struct {
		S int `json:"s"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.S < 2 {
		t.Errorf("best-effort s = %d, want >= 2", out.S)
	}
}

func TestSearchTopParameter(t *testing.T) {
	h := testHandler(t)
	_, body := get(t, h, "/search?q=karen&s=1&top=1")
	var out struct {
		Total   int           `json:"total"`
		Results []interface{} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total < 2 || len(out.Results) != 1 {
		t.Errorf("top truncation failed: total=%d printed=%d", out.Total, len(out.Results))
	}
}

func TestInsightsEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/insights?q=karen&s=1&m=3")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Data Mining") && !strings.Contains(body, "Algorithms") {
		t.Errorf("insights missing course names: %s", body)
	}
}

func TestRefineEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/refine?q=karen+julie+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "refinements") {
		t.Errorf("refine body: %s", body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/explain?q=karen+mike&s=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"slSize", "blocks", "survivors"} {
		if _, ok := out[key]; !ok {
			t.Errorf("explain missing %q: %s", key, body)
		}
	}
}

func TestBaselinesEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/baselines?q=karen+mike")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "slca") || !strings.Contains(body, "elca") {
		t.Errorf("baselines body: %s", body)
	}
}

func TestSchemaAndStatsEndpoints(t *testing.T) {
	h := testHandler(t)
	if code, body := get(t, h, "/schema"); code != 200 || !strings.Contains(body, "Student") {
		t.Errorf("schema: %d %s", code, body)
	}
	if code, body := get(t, h, "/stats"); code != 200 || !strings.Contains(body, "EntityNodes") {
		t.Errorf("stats: %d %s", code, body)
	}
}

func TestMissingQuery(t *testing.T) {
	h := testHandler(t)
	for _, url := range []string{"/search", "/insights", "/refine", "/explain", "/baselines"} {
		if code, _ := get(t, h, url); code != 400 {
			t.Errorf("%s without q: status %d, want 400", url, code)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	// The index is immutable; concurrent searches must be race-free
	// (validated under -race in CI).
	h := testHandler(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			urls := []string{
				"/search?q=karen&s=1",
				"/insights?q=mike&s=1",
				"/baselines?q=karen+mike",
				"/stats",
			}
			code, _ := get(t, h, urls[i%len(urls)])
			if code != 200 {
				t.Errorf("concurrent request failed: %d", code)
			}
		}(i)
	}
	wg.Wait()
}

func TestTypesEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/types?q=karen+mike&top=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "Course") {
		t.Errorf("types body: %s", body)
	}
	if code, _ := get(t, h, "/types"); code != 400 {
		t.Errorf("missing q: %d", code)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/suggest?kw=karne")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "karen") {
		t.Errorf("suggest body: %s", body)
	}
	if code, _ := get(t, h, "/suggest"); code != 400 {
		t.Errorf("missing kw: %d", code)
	}
}

// Regression: the old cache key fmt.Sprintf("%s|%d|%d", q, s, top) joined
// the raw query with the numeric fields, so a "|" inside q could bleed into
// them. The quoted key must keep every distinct triple distinct.
func TestCacheKeyPipeCollisionProof(t *testing.T) {
	triples := []struct {
		q      string
		s, top int
	}{
		{"a", 1, 10}, {"a|1", 1, 10}, {"a|1|1", 10, 10}, {"a|1", 10, 10},
		{`a"b`, 1, 10}, {"a", 11, 0}, {"a|1|10", 1, 10},
	}
	seen := make(map[string]int)
	for i, tr := range triples {
		k := cacheKey(1, tr.q, tr.s, tr.top)
		if j, dup := seen[k]; dup {
			t.Errorf("cacheKey collision between %+v and %+v: %q", triples[j], triples[i], k)
		}
		seen[k] = i
	}
}

func TestCachedSearchPipeQuery(t *testing.T) {
	h := NewWithCache(testSystem(t), 8)
	// "karen|mike" tokenizes like "karen mike"; a query containing "|" must
	// hit its own cache entry, not a neighboring one.
	code, piped := get(t, h, "/search?q=karen%7Cmike&s=2")
	if code != 200 {
		t.Fatalf("status %d: %s", code, piped)
	}
	if code, again := get(t, h, "/search?q=karen%7Cmike&s=2"); code != 200 || again != piped {
		t.Errorf("piped query not cached consistently")
	}
	if code, plain := get(t, h, "/search?q=karen&s=1"); code != 200 || plain == piped {
		t.Errorf("distinct query served the piped query's entry")
	}
	hits, misses := h.CacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestMalformedIntParamsRejected(t *testing.T) {
	h := testHandler(t)
	for _, url := range []string{
		"/search?q=karen&s=abc",
		"/search?q=karen&top=1.5",
		"/search?q=karen&top=",
		"/insights?q=karen&m=x",
		"/refine?q=karen&top=x",
		"/explain?q=karen&s=x",
		"/types?q=karen&top=x",
		"/suggest?kw=karen&dist=x",
		"/suggest?kw=karen&top=x",
	} {
		code, body := get(t, h, url)
		if code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", url, code, body)
		}
		if !strings.Contains(body, "invalid") {
			t.Errorf("%s: body should name the invalid parameter: %s", url, body)
		}
	}
}

// Regression: top=-1 used to disable truncation and return the unbounded
// result set; negative integers are now rejected outright.
func TestNegativeParamsRejected(t *testing.T) {
	h := testHandler(t)
	for _, url := range []string{
		"/search?q=karen&top=-1",
		"/search?q=karen&s=-2",
		"/insights?q=karen&m=-1",
		"/suggest?kw=karen&dist=-1",
	} {
		if code, body := get(t, h, url); code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", url, code, body)
		}
	}
}

func TestTopZeroAndClamp(t *testing.T) {
	h := testHandler(t)
	_, body := get(t, h, "/search?q=karen&s=1&top=0")
	var out struct {
		Total   int           `json:"total"`
		Results []interface{} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total < 2 || len(out.Results) != 0 {
		t.Errorf("top=0 should return metadata only: total=%d printed=%d", out.Total, len(out.Results))
	}
	// Values above the cap are clamped, not rejected.
	if code, _ := get(t, h, "/search?q=karen&s=1&top=99999999"); code != 200 {
		t.Errorf("oversized top should be clamped to maxTop, got status %d", code)
	}
}

func TestNotFoundJSON(t *testing.T) {
	h := testHandler(t)
	for _, url := range []string{"/nope", "/", "/search/extra"} {
		code, body := get(t, h, url)
		if code != 404 {
			t.Errorf("%s: status %d, want 404", url, code)
		}
		var out struct {
			Error     string   `json:"error"`
			Endpoints []string `json:"endpoints"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("%s: 404 body is not JSON: %v\n%s", url, err, body)
		}
		found := false
		for _, ep := range out.Endpoints {
			found = found || ep == "/search"
		}
		if !found {
			t.Errorf("%s: 404 body should list known endpoints: %s", url, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testHandler(t)
	for _, method := range []string{"POST", "PUT", "DELETE"} {
		req := httptest.NewRequest(method, "/search?q=karen", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 405 {
			t.Errorf("%s /search: status %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("%s /search: Allow header = %q", method, allow)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Errorf("405 should be JSON, got Content-Type %q", ct)
		}
	}
}

// writeError must route client mistakes to 400, context expiry to 504, and
// everything else to 500 — internal failures no longer masquerade as 400s.
func TestErrorStatusSplit(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{badRequest(errors.New("bad param")), 400},
		{fmt.Errorf("wrapped: %w", badRequest(errors.New("bad"))), 400},
		{context.DeadlineExceeded, 504},
		{fmt.Errorf("search: %w", context.Canceled), 504},
		{errors.New("disk exploded"), 500},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, c.err)
		if rec.Code != c.want {
			t.Errorf("writeError(%v) = %d, want %d", c.err, rec.Code, c.want)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Errorf("writeError(%v): Content-Type %q", c.err, ct)
		}
	}
}

// Singleflight + shared cache under -race: many goroutines hammering the
// same cold key must all succeed and agree on the response body.
func TestSearchSingleflightHammer(t *testing.T) {
	h := NewWithCache(testSystem(t), 32)
	const workers = 64
	bodies := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := get(t, h, "/search?q=karen+mike&s=2")
			if code != 200 {
				t.Errorf("worker %d: status %d", i, code)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("worker %d saw a different response body", i)
		}
	}
	if hits, misses := h.CacheStats(); hits+misses != workers {
		t.Errorf("cache saw %d lookups, want %d", hits+misses, workers)
	}
}

func TestCachedSearch(t *testing.T) {
	doc := gks.BuildDocument("c.xml", gks.E("r",
		gks.E("item", gks.ET("name", "widget"), gks.ET("color", "red")),
		gks.E("item", gks.ET("name", "gadget"), gks.ET("color", "red")),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithCache(sys, 8)
	first := ""
	for i := 0; i < 3; i++ {
		code, body := get(t, h, "/search?q=red&s=1")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		if i == 0 {
			first = body
		} else if body != first {
			t.Fatal("cached response differs from first response")
		}
	}
	// Different parameters bypass the cached entry.
	_, other := get(t, h, "/search?q=red&s=1&top=1")
	if other == first {
		t.Error("top parameter must key the cache")
	}
}

// partialSearcher wraps a Searcher and, while degraded, marks every
// search response partial — simulating a shard set degrading under a
// transient shard failure with -partial-results.
type partialSearcher struct {
	gks.Searcher
	degraded atomic.Bool
}

func (p *partialSearcher) SearchContext(ctx context.Context, q string, s int) (*gks.Response, error) {
	resp, err := p.Searcher.SearchContext(ctx, q, s)
	if err == nil && p.degraded.Load() {
		c := *resp
		c.Partial = true
		resp = &c
	}
	return resp, err
}

// TestPartialResponsesFlaggedAndNotCached: a degraded response must carry
// partial=true on the wire and must NOT enter the response cache — once
// the failing shard recovers, the same query must come back complete.
func TestPartialResponsesFlaggedAndNotCached(t *testing.T) {
	ps := &partialSearcher{Searcher: testSystem(t)}
	ps.degraded.Store(true)
	h := NewWithCache(ps, 16)

	var out struct {
		Partial bool `json:"partial"`
	}
	code, body := get(t, h, "/search?q=karen&s=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !out.Partial {
		t.Fatalf("degraded response not flagged partial: %s", body)
	}

	ps.degraded.Store(false)
	code, body = get(t, h, "/search?q=karen&s=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Partial {
		t.Fatalf("recovered search served the cached partial response: %s", body)
	}
	if hits, misses := h.CacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("cache stats after partial + complete search: hits=%d misses=%d, want 0/2", hits, misses)
	}

	// The complete response IS cached.
	if code, _ := get(t, h, "/search?q=karen&s=1"); code != 200 {
		t.Fatalf("status %d", code)
	}
	if hits, _ := h.CacheStats(); hits != 1 {
		t.Fatalf("complete response not cached: hits=%d, want 1", hits)
	}
}
