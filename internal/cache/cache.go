// Package cache provides a small, mutex-guarded LRU used to memoize query
// responses in front of the (deterministic, immutable-index) search engine
// — the standard serving-layer optimization for read-heavy keyword-search
// deployments such as cmd/gksd.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache. The zero value is
// unusable; create instances with New. All methods are safe for concurrent
// use.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[K]*list.Element

	hits, misses int64
}

type entry[K comparable, V any] struct {
	key   K
	value V
}

// New returns an LRU holding at most capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and whether it was present, refreshing the
// entry's recency.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *LRU[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, value: value})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (e.g. after AddDocuments invalidates responses).
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[K]*list.Element, c.capacity)
}

// Stats returns cumulative hit/miss counters.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
