package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutEvict(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d/%v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestPutRefreshesValue(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("a = %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestPurgeAndStats(t *testing.T) {
	c := New[int, string](4)
	c.Put(1, "x")
	c.Get(1)
	c.Get(2)
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Error("purged entry still present")
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
