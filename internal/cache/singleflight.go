package cache

import (
	"context"
	"sync"
)

// Group coalesces concurrent calls that share a key: the first caller (the
// leader) executes fn; every caller that arrives for the same key while the
// leader is running waits for — and shares — the leader's result instead of
// re-executing fn. In front of the search engine this prevents a popular
// query from stampeding the engine on a cold cache: N identical concurrent
// misses cost one search, not N.
//
// Followers share the leader's outcome, including its error: if the leader's
// request context is canceled mid-search, waiting followers receive that
// error too. A follower whose own ctx expires stops waiting and returns
// ctx.Err() without affecting the flight.
//
// The zero value is ready to use. All methods are safe for concurrent use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn once per concurrent set of callers with the same key and
// returns the shared result. shared reports whether the result came from
// another caller's execution.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
