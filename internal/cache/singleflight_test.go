package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The stampede case: one leader executes, concurrent callers for the same
// key wait and share the result — fn runs exactly once.
func TestGroupCoalescesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := g.Do(context.Background(), "q", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if v != 42 || shared || err != nil {
			t.Errorf("leader got (%d, %v, %v), want (42, false, nil)", v, shared, err)
		}
	}()
	<-started // the leader is inside fn

	const followers = 10
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "q", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if v != 42 || err != nil {
				t.Errorf("follower got (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let followers join the flight
	close(release)
	wg.Wait()
	<-leaderDone
	if n := calls.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
}

func TestGroupDistinctKeysRunIndependently(t *testing.T) {
	var g Group[string, string]
	a, shared, err := g.Do(context.Background(), "a", func() (string, error) { return "va", nil })
	if a != "va" || shared || err != nil {
		t.Fatalf("got (%q, %v, %v)", a, shared, err)
	}
	b, _, _ := g.Do(context.Background(), "b", func() (string, error) { return "vb", nil })
	if b != "vb" {
		t.Fatalf("got %q", b)
	}
	// A completed flight does not pin its result: the next call re-executes.
	a2, shared, _ := g.Do(context.Background(), "a", func() (string, error) { return "va2", nil })
	if a2 != "va2" || shared {
		t.Errorf("finished flight leaked: (%q, %v)", a2, shared)
	}
}

func TestGroupSharesLeaderError(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 0, boom
	})
	<-started
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (int, error) { return 1, nil })
		followerErr <- err
	}()
	time.Sleep(100 * time.Millisecond)
	close(release)
	if err := <-followerErr; !errors.Is(err, boom) {
		t.Errorf("follower error = %v, want boom", err)
	}
}

func TestGroupFollowerContextCancellation(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 7, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.Do(ctx, "k", func() (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled follower error = %v, want context.Canceled", err)
	}
}
