package postings

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{0},
		{0, 1, 2, 3},
		{5, 100, 101, 1 << 20},
		{2147480000, 2147480001},
	}
	for _, list := range cases {
		buf := Encode(nil, list)
		got, n, err := Decode(buf, len(list))
		if err != nil {
			t.Fatalf("Decode(%v): %v", list, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		if len(list) == 0 {
			if len(got) != 0 {
				t.Errorf("Decode = %v, want empty", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, list) {
			t.Errorf("round trip %v -> %v", list, got)
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	f := func(raw []uint16) bool {
		list := sortedUnique(raw)
		buf := Encode(nil, list)
		return EncodedSize(list) == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode must panic on non-increasing input")
		}
	}()
	Encode(nil, []int32{3, 3})
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil, 1); err == nil {
		t.Error("truncated input must fail")
	}
	buf := Encode(nil, []int32{1, 2})
	if _, _, err := Decode(buf[:1], 2); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestIterator(t *testing.T) {
	list := []int32{3, 7, 8, 1000, 100000}
	buf := Encode(nil, list)
	it := NewIterator(buf, len(list))
	var got []int32
	for v, ok := it.Next(); ok; v, ok = it.Next() {
		got = append(got, v)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if !reflect.DeepEqual(got, list) {
		t.Errorf("iterator %v, want %v", got, list)
	}
	// Exhausted iterator keeps returning false.
	if _, ok := it.Next(); ok {
		t.Error("exhausted iterator returned a value")
	}
}

func TestIteratorTruncated(t *testing.T) {
	buf := Encode(nil, []int32{1, 300})
	it := NewIterator(buf[:1], 2)
	if _, ok := it.Next(); !ok {
		t.Fatal("first entry should decode")
	}
	if _, ok := it.Next(); ok {
		t.Error("second entry should fail")
	}
	if it.Err() == nil {
		t.Error("Err must report truncation")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{3, 4, 5, 10}
	if got := Intersect(a, b); !reflect.DeepEqual(got, []int32{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, []int32{1, 3, 4, 5, 7, 9, 10}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, nil); got != nil {
		t.Errorf("Intersect with empty = %v", got)
	}
	if got := Union(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestIntersectUnionProperties(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := sortedUnique(ra), sortedUnique(rb)
		inter := Intersect(a, b)
		union := Union(a, b)
		set := func(l []int32) map[int32]bool {
			m := map[int32]bool{}
			for _, v := range l {
				m[v] = true
			}
			return m
		}
		sa, sb := set(a), set(b)
		for _, v := range inter {
			if !sa[v] || !sb[v] {
				return false
			}
		}
		for v := range sa {
			if !contains(union, v) {
				return false
			}
		}
		for v := range sb {
			if !contains(union, v) {
				return false
			}
		}
		if len(union) != len(sa)+len(sb)-len(inter) {
			return false
		}
		return sort.SliceIsSorted(union, func(i, j int) bool { return union[i] < union[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressionRatio(t *testing.T) {
	// Dense lists (small deltas) must compress to near 1 byte/entry,
	// versus 4 bytes raw.
	rng := rand.New(rand.NewSource(1))
	list := make([]int32, 10000)
	cur := int32(0)
	for i := range list {
		cur += int32(1 + rng.Intn(3))
		list[i] = cur
	}
	buf := Encode(nil, list)
	if perEntry := float64(len(buf)) / float64(len(list)); perEntry > 1.1 {
		t.Errorf("dense list uses %.2f bytes/entry, want ~1", perEntry)
	}
}

func sortedUnique(raw []uint16) []int32 {
	m := map[int32]bool{}
	for _, r := range raw {
		m[int32(r)] = true
	}
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(l []int32, v int32) bool {
	for _, x := range l {
		if x == v {
			return true
		}
	}
	return false
}
