package postings

import (
	"math/rand"
	"testing"
)

func denseList(n int) []int32 {
	rng := rand.New(rand.NewSource(2))
	out := make([]int32, n)
	cur := int32(0)
	for i := range out {
		cur += int32(1 + rng.Intn(4))
		out[i] = cur
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	list := denseList(100000)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], list)
	}
	b.SetBytes(int64(len(list) * 4))
}

func BenchmarkDecode(b *testing.B) {
	list := denseList(100000)
	buf := Encode(nil, list)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := Decode(buf, len(list))
		if err != nil || len(got) != len(list) {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(list) * 4))
}

func BenchmarkIterator(b *testing.B) {
	list := denseList(100000)
	buf := Encode(nil, list)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewIterator(buf, len(list))
		n := 0
		for _, ok := it.Next(); ok; _, ok = it.Next() {
			n++
		}
		if n != len(list) {
			b.Fatal("short iteration")
		}
	}
}
