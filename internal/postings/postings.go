// Package postings implements compressed posting lists for the GKS
// inverted index: strictly increasing node ordinals stored as
// delta-encoded unsigned varints, the standard representation in
// production inverted indexes. The compact binary index format
// (internal/index, format v2) stores every keyword's list this way; the
// paper's own index (§2.4) stores sorted Dewey lists, for which ordinal
// deltas are the dense equivalent.
package postings

import (
	"encoding/binary"
	"fmt"
)

// Encode appends the delta-varint encoding of the strictly increasing
// ordinal list to buf and returns the extended slice. Encode panics if the
// list is not strictly increasing (indexing bugs must not be masked).
func Encode(buf []byte, list []int32) []byte {
	prev := int32(-1)
	for _, v := range list {
		if v <= prev {
			panic(fmt.Sprintf("postings: list not strictly increasing: %d after %d", v, prev))
		}
		buf = binary.AppendUvarint(buf, uint64(v-prev))
		prev = v
	}
	return buf
}

// EncodedSize returns the exact number of bytes Encode will produce.
func EncodedSize(list []int32) int {
	size := 0
	prev := int32(-1)
	for _, v := range list {
		size += uvarintLen(uint64(v - prev))
		prev = v
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decode reads n ordinals from buf, returning the list and the number of
// bytes consumed.
func Decode(buf []byte, n int) ([]int32, int, error) {
	list := make([]int32, 0, n)
	off := 0
	prev := int32(-1)
	for i := 0; i < n; i++ {
		d, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return nil, 0, fmt.Errorf("postings: truncated at entry %d", i)
		}
		off += w
		next := int64(prev) + int64(d)
		if next > int64(^uint32(0)>>1) {
			return nil, 0, fmt.Errorf("postings: ordinal overflow at entry %d", i)
		}
		prev = int32(next)
		list = append(list, prev)
	}
	return list, off, nil
}

// Iterator streams a compressed list without materializing it — used for
// merge-time decoding.
type Iterator struct {
	buf  []byte
	off  int
	prev int32
	n    int
	read int
	err  error
}

// NewIterator returns an iterator over a buffer holding n encoded entries.
func NewIterator(buf []byte, n int) *Iterator {
	return &Iterator{buf: buf, prev: -1, n: n}
}

// Next returns the next ordinal; ok is false at the end of the list or on
// a decoding error (check Err).
func (it *Iterator) Next() (int32, bool) {
	if it.read >= it.n || it.err != nil {
		return 0, false
	}
	d, w := binary.Uvarint(it.buf[it.off:])
	if w <= 0 {
		it.err = fmt.Errorf("postings: truncated at entry %d", it.read)
		return 0, false
	}
	it.off += w
	it.prev += int32(d)
	it.read++
	return it.prev, true
}

// Err reports a decoding failure, if any.
func (it *Iterator) Err() error { return it.err }

// Intersect returns the intersection of two strictly increasing lists —
// the node-level AND used for phrase keywords.
func Intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the deduplicated union of two strictly increasing lists.
func Union(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
