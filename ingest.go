package gks

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// Live document ingestion: online add, replace and delete without a full
// rebuild. All mutations are copy-on-write — they return a NEW system and
// leave the receiver untouched, so a server can keep answering queries on
// the old system until the new one is atomically swapped in (see
// internal/server's /admin/docs endpoints). A delete is a tombstone mask
// over the shared immutable index, compacted away by the next save or
// append; an add is a partial-index merge.

// ErrDocNotFound reports a mutation against a document name the system
// does not hold (match with errors.Is).
var ErrDocNotFound = index.ErrNotFound

// ErrLastDocument reports a delete that would leave the system empty — an
// index always holds at least one document (match with errors.Is).
var ErrLastDocument = index.ErrLastDocument

// ErrNoLiveIngestion reports an Upsert/Remove against a Searcher
// implementation that has no mutation surface — a deployment problem, not
// a bad request (match with errors.Is).
var ErrNoLiveIngestion = errors.New("does not support live ingestion")

// ErrInvalidDocName reports an upsert whose document name the system
// cannot hold (match with errors.Is). Names route deletes, dedupe
// replacements, key WAL records and appear in snapshot manifests and log
// lines, so an empty or control-character name would create a document
// that is unroutable, undeletable, or corrupts a line-oriented format.
var ErrInvalidDocName = errors.New("invalid document name")

// ValidateDocName enforces the document-name rules every ingestion layer
// shares — non-blank, at most 512 bytes, no NUL/CR/LF. The HTTP admin
// surface applies the same rules at parse time; this is the library-level
// guard for offline paths (`gks add`) and direct API callers.
func ValidateDocName(name string) error {
	switch {
	case strings.TrimSpace(name) == "":
		return fmt.Errorf("gks: %w: empty name", ErrInvalidDocName)
	case len(name) > 512:
		return fmt.Errorf("gks: %w: %d bytes (max 512)", ErrInvalidDocName, len(name))
	case strings.ContainsAny(name, "\x00\n\r"):
		return fmt.Errorf("gks: %w: name contains control characters", ErrInvalidDocName)
	}
	return nil
}

// ContainsDoc reports whether the system holds a live document named name.
func (s *System) ContainsDoc(name string) bool { return s.ix.ContainsDoc(name) }

// DocNames returns the live document names in index order.
func (s *System) DocNames() []string { return s.ix.LiveDocs() }

// UpsertDocument returns a new system with doc added, replacing any
// existing document of the same name (replaced reports whether one
// existed); the receiver is unchanged and safe to keep searching. The
// document is renumbered to the system's next free document id; on
// failure the caller's document is left exactly as passed in.
func (s *System) UpsertDocument(doc *Document) (*System, bool, error) {
	if doc == nil || doc.Root == nil {
		return nil, false, fmt.Errorf("gks: upsert of empty document")
	}
	if err := ValidateDocName(doc.Name); err != nil {
		return nil, false, err
	}
	ix := s.ix
	replaced := false
	if ix.ContainsDoc(doc.Name) {
		next, err := ix.DeleteDoc(doc.Name)
		switch {
		case err == nil:
			ix = next
		case errors.Is(err, index.ErrLastDocument):
			// Replacing the only document: nothing survives to merge onto,
			// so build a fresh one-document index from scratch.
			fresh, err := index.BuildDocumentAs(doc, 0, index.DefaultOptions())
			if err != nil {
				return nil, false, err
			}
			return newSystem(fresh, s.repoAfterUpsert(doc)), true, nil
		default:
			return nil, false, err
		}
		replaced = true
	}
	next, err := index.AppendAs(ix, doc, ix.NextDocID(), index.DefaultOptions())
	if err != nil {
		return nil, false, err
	}
	return newSystem(next, s.repoAfterUpsert(doc)), replaced, nil
}

// WithoutDocument returns a new system with the named document removed;
// the receiver is unchanged. It fails with ErrDocNotFound when the name is
// not held and ErrLastDocument when the delete would empty the system.
func (s *System) WithoutDocument(name string) (*System, error) {
	next, err := s.ix.DeleteDoc(name)
	if err != nil {
		return nil, err
	}
	var repo *xmltree.Repository
	if s.repo != nil {
		repo = &xmltree.Repository{Docs: docsWithout(s.repo.Docs, name)}
	}
	return newSystem(next, repo), nil
}

// repoAfterUpsert carries the retained document trees (chunks, snippets,
// XPath) across an upsert: same-name documents drop out, the new one
// appends. A system without documents (loaded from a snapshot) stays
// document-free — searches work either way.
func (s *System) repoAfterUpsert(doc *Document) *xmltree.Repository {
	if s.repo == nil {
		return nil
	}
	return &xmltree.Repository{Docs: append(docsWithout(s.repo.Docs, doc.Name), doc)}
}

func docsWithout(docs []*xmltree.Document, name string) []*xmltree.Document {
	out := make([]*xmltree.Document, 0, len(docs))
	for _, d := range docs {
		if d.Name != name {
			out = append(out, d)
		}
	}
	return out
}

// Upsert adds or replaces a document on any Searcher that supports live
// ingestion (System and ShardedSystem) and returns the mutated successor;
// sys itself is unchanged, so the caller controls when (and whether) to
// swap the result into service.
func Upsert(sys Searcher, doc *Document) (Searcher, bool, error) {
	// Validate here too, not just in System.UpsertDocument: the sharded
	// path dispatches straight to shard.Set.WithDocument, which would
	// otherwise accept a name no delete or replace can ever address.
	if doc != nil {
		if err := ValidateDocName(doc.Name); err != nil {
			return nil, false, err
		}
	}
	switch v := sys.(type) {
	case *System:
		next, replaced, err := v.UpsertDocument(doc)
		if err != nil {
			return nil, false, err
		}
		return next, replaced, nil
	case *ShardedSystem:
		next, replaced, err := v.WithDocument(doc)
		if err != nil {
			return nil, false, err
		}
		return next, replaced, nil
	}
	return nil, false, fmt.Errorf("gks: %T %w", sys, ErrNoLiveIngestion)
}

// Remove deletes a document by name on any Searcher that supports live
// ingestion and returns the mutated successor; sys itself is unchanged.
// ErrDocNotFound and ErrLastDocument surface via errors.Is.
func Remove(sys Searcher, name string) (Searcher, error) {
	switch v := sys.(type) {
	case *System:
		next, err := v.WithoutDocument(name)
		if err != nil {
			return nil, err
		}
		return next, nil
	case *ShardedSystem:
		next, err := v.WithoutDocument(name)
		if err != nil {
			return nil, err
		}
		return next, nil
	}
	return nil, fmt.Errorf("gks: %T %w", sys, ErrNoLiveIngestion)
}
