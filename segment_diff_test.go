package gks

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// segmentPair builds an eager in-memory system from docs, persists it as a
// GKS4 segment, and reopens that file lazily with the given block-cache
// capacity. Every differential test in this file diffs the two systems:
// the segment-backed one must be observationally identical to the eager
// one on the full read surface.
func segmentPair(t *testing.T, cacheBytes int64, docs ...*Document) (eager, lazy *System) {
	t.Helper()
	eager, err := IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.gks4")
	if err := eager.SaveSegmentFile(path); err != nil {
		t.Fatal(err)
	}
	lazy, err = LoadIndexFileOpts(path, SegmentOptions{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Segment() == nil {
		t.Fatal("LoadIndexFileOpts on a GKS4 file did not produce a segment-backed system")
	}
	t.Cleanup(func() {
		if err := lazy.CloseIndex(); err != nil {
			t.Errorf("CloseIndex: %v", err)
		}
	})
	return eager, lazy
}

func segmentCorpora(t *testing.T) map[string][]*Document {
	t.Helper()
	uni, err := ParseDocumentString(universityXML, "university.xml")
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]*Document{
		"university": {uni},
		"swissprot": {
			datagen.SwissProt(datagen.Config{Seed: 7, Scale: 2}),
			datagen.Mondial(datagen.Config{Seed: 11, Scale: 1}),
		},
		"mondial": {
			datagen.Mondial(datagen.Config{Seed: 3, Scale: 2}),
		},
	}
}

// vocab returns the corpus keyword vocabulary in sorted order so seeded
// query generation is deterministic.
func vocab(sys *System) []string {
	kws := make([]string, 0, len(sys.ix.Postings))
	for kw := range sys.ix.Postings {
		kws = append(kws, kw)
	}
	sort.Strings(kws)
	return kws
}

// randomQueries mixes matching keywords, misses and phrases.
func randomQueries(rng *rand.Rand, kws []string, n int) []string {
	qs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(4)
		parts := make([]string, 0, k)
		for j := 0; j < k; j++ {
			switch rng.Intn(8) {
			case 0:
				parts = append(parts, "zzz-no-such-keyword")
			case 1:
				a, b := kws[rng.Intn(len(kws))], kws[rng.Intn(len(kws))]
				parts = append(parts, fmt.Sprintf("%q", a+" "+b))
			default:
				parts = append(parts, kws[rng.Intn(len(kws))])
			}
		}
		qs = append(qs, joinSpace(parts))
	}
	return qs
}

func joinSpace(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += " "
		}
		s += p
	}
	return s
}

// normResp strips the wall-clock stage timings, which legitimately differ
// between the resident and the block-fetched pipeline; everything else
// must match exactly.
func normResp(r *Response) Response {
	if r == nil {
		return Response{}
	}
	c := *r
	c.Stages = core.StageTimings{}
	return c
}

func diffSearchSurface(t *testing.T, eager, lazy *System, query string, s int) {
	t.Helper()
	re, errE := eager.Search(query, s)
	rl, errL := lazy.Search(query, s)
	if (errE == nil) != (errL == nil) {
		t.Fatalf("Search(%q,%d) error mismatch: eager=%v lazy=%v", query, s, errE, errL)
	}
	if errE != nil {
		if errE.Error() != errL.Error() {
			t.Fatalf("Search(%q,%d) error text: eager=%v lazy=%v", query, s, errE, errL)
		}
		return
	}
	if !reflect.DeepEqual(normResp(re), normResp(rl)) {
		t.Fatalf("Search(%q,%d) responses differ:\neager: %+v\nlazy:  %+v", query, s, normResp(re), normResp(rl))
	}
	if ie, il := eager.Insights(re, 5), lazy.Insights(rl, 5); !reflect.DeepEqual(ie, il) {
		t.Fatalf("Insights(%q) differ:\neager: %+v\nlazy:  %+v", query, ie, il)
	}
	if fe, fl := eager.Refinements(re, 3), lazy.Refinements(rl, 3); !reflect.DeepEqual(fe, fl) {
		t.Fatalf("Refinements(%q) differ: eager=%v lazy=%v", query, fe, fl)
	}
	ke, errE := eager.SearchTopK(query, s, 5)
	kl, errL := lazy.SearchTopK(query, s, 5)
	if (errE == nil) != (errL == nil) || (errE == nil && !reflect.DeepEqual(normResp(ke), normResp(kl))) {
		t.Fatalf("SearchTopK(%q) differ: eager=%+v/%v lazy=%+v/%v", query, ke, errE, kl, errL)
	}
	be, errE := eager.SearchBestEffort(query)
	bl, errL := lazy.SearchBestEffort(query)
	if (errE == nil) != (errL == nil) || (errE == nil && !reflect.DeepEqual(normResp(be), normResp(bl))) {
		t.Fatalf("SearchBestEffort(%q) differ: eager=%+v/%v lazy=%+v/%v", query, be, errE, bl, errL)
	}
	q := ParseQuery(query)
	if se, sl := eager.SLCA(q), lazy.SLCA(q); !reflect.DeepEqual(se, sl) {
		t.Fatalf("SLCA(%q) differ: eager=%v lazy=%v", query, se, sl)
	}
	if ee, el := eager.ELCA(q), lazy.ELCA(q); !reflect.DeepEqual(ee, el) {
		t.Fatalf("ELCA(%q) differ: eager=%v lazy=%v", query, ee, el)
	}
}

// TestSegmentDifferentialSearch is the central GKS4 property test: over
// randomized corpora and seeded random queries, a segment-backed system
// with a block cache far smaller than the postings (forcing eviction
// churn) answers the entire read surface identically to the eager
// in-memory system it was written from.
func TestSegmentDifferentialSearch(t *testing.T) {
	for name, docs := range segmentCorpora(t) {
		t.Run(name, func(t *testing.T) {
			// 8 KiB cache: a handful of 32 KiB-uncompressed blocks never
			// fit, so every corpus beyond the toy one churns constantly.
			eager, lazy := segmentPair(t, 8<<10, docs...)

			if !reflect.DeepEqual(eager.Stats(), lazy.Stats()) {
				t.Fatalf("Stats differ:\neager: %+v\nlazy:  %+v", eager.Stats(), lazy.Stats())
			}
			if se, sl := eager.Schema(), lazy.Schema(); !reflect.DeepEqual(se, sl) {
				t.Fatalf("Schema differ: eager=%v lazy=%v", se, sl)
			}
			if ke, kl := eager.TopKeywords(10), lazy.TopKeywords(10); !reflect.DeepEqual(ke, kl) {
				t.Fatalf("TopKeywords differ: eager=%v lazy=%v", ke, kl)
			}
			if le, ll := eager.LabelHistogram(), lazy.LabelHistogram(); !reflect.DeepEqual(le, ll) {
				t.Fatalf("LabelHistogram differ: eager=%v lazy=%v", le, ll)
			}
			if de, dl := eager.DepthHistogram(), lazy.DepthHistogram(); !reflect.DeepEqual(de, dl) {
				t.Fatalf("DepthHistogram differ: eager=%v lazy=%v", de, dl)
			}
			if ve, vl := eager.ValidateIndex(), lazy.ValidateIndex(); ve != nil || vl != nil {
				t.Fatalf("ValidateIndex: eager=%v lazy=%v", ve, vl)
			}

			kws := vocab(eager)
			rng := rand.New(rand.NewSource(42))
			for _, query := range randomQueries(rng, kws, 40) {
				s := 1 + rng.Intn(3)
				diffSearchSurface(t, eager, lazy, query, s)
			}
			// Suggestions walk the whole vocabulary (resident directory on
			// the lazy side — no block I/O needed).
			for i := 0; i < 5; i++ {
				kw := kws[rng.Intn(len(kws))] + "x"
				if se, sl := eager.Suggest(kw, 2, 3), lazy.Suggest(kw, 2, 3); !reflect.DeepEqual(se, sl) {
					t.Fatalf("Suggest(%q) differ: eager=%v lazy=%v", kw, se, sl)
				}
			}
			if lazy.Segment().BlockReads() == 0 {
				t.Fatal("segment-backed search performed no block reads — the differential proved nothing")
			}
		})
	}
}

// TestSegmentEvictionMidQueryConcurrent hammers one segment-backed system
// from many goroutines with a cache small enough that blocks one query
// still needs are evicted by its neighbours mid-flight. Run under -race
// by make segment-smoke; the responses must still all match the eager
// oracle.
func TestSegmentEvictionMidQueryConcurrent(t *testing.T) {
	docs := []*Document{
		datagen.SwissProt(datagen.Config{Seed: 5, Scale: 2}),
		datagen.Mondial(datagen.Config{Seed: 6, Scale: 1}),
	}
	// 2 KiB: smaller than a single typical block, so even one query's
	// second block evicts its first.
	eager, lazy := segmentPair(t, 2<<10, docs...)

	kws := vocab(eager)
	rng := rand.New(rand.NewSource(99))
	queries := randomQueries(rng, kws, 24)
	type oracle struct {
		resp Response
		err  string
	}
	want := make([]oracle, len(queries))
	for i, q := range queries {
		r, err := eager.Search(q, 2)
		if err != nil {
			want[i] = oracle{err: err.Error()}
			continue
		}
		want[i] = oracle{resp: normResp(r)}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8*len(queries))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range queries {
				r, err := lazy.Search(q, 2)
				switch {
				case err != nil && want[i].err == "":
					errc <- fmt.Errorf("goroutine %d: Search(%q): unexpected error %v", g, q, err)
				case err == nil && want[i].err != "":
					errc <- fmt.Errorf("goroutine %d: Search(%q): missing error %q", g, q, want[i].err)
				case err == nil && !reflect.DeepEqual(normResp(r), want[i].resp):
					errc <- fmt.Errorf("goroutine %d: Search(%q): response diverged", g, q)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if br, nb := lazy.Segment().BlockReads(), lazy.Segment().NumBlocks(); br <= int64(nb) {
		t.Fatalf("block reads (%d) <= block count (%d): no eviction churn, the cache never overflowed", br, nb)
	}
}

// TestSegmentRewriteStable checks the conversion loop: a segment-backed
// system written back to GKS4 produces byte-identical files (the writer
// is deterministic and the lazy read path streams losslessly), and a
// GKS4 -> GKS3 -> load -> GKS4 loop converges to the same bytes.
func TestSegmentRewriteStable(t *testing.T) {
	docs := []*Document{datagen.SwissProt(datagen.Config{Seed: 1, Scale: 1})}
	eager, lazy := segmentPair(t, 0, docs...)
	dir := t.TempDir()

	again := filepath.Join(dir, "again.gks4")
	if err := lazy.SaveSegmentFile(again); err != nil {
		t.Fatal(err)
	}
	orig := lazy.Segment().Path()
	if !filesEqual(t, orig, again) {
		t.Fatal("re-writing a segment-backed system produced different bytes")
	}

	gks3 := filepath.Join(dir, "down.gksidx")
	if err := lazy.SaveIndexFile(gks3); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndexFile(gks3)
	if err != nil {
		t.Fatal(err)
	}
	roundtrip := filepath.Join(dir, "roundtrip.gks4")
	if err := back.SaveSegmentFile(roundtrip); err != nil {
		t.Fatal(err)
	}
	if !filesEqual(t, orig, roundtrip) {
		t.Fatal("GKS4 -> GKS3 -> GKS4 did not round-trip byte-identically")
	}
	_ = eager
}

// TestSegmentMutationMaterializes upserts into a segment-backed system
// and diffs the result against the same mutation applied to the eager
// oracle: mutations transparently materialize the lazy index first.
func TestSegmentMutationMaterializes(t *testing.T) {
	docs := []*Document{datagen.SwissProt(datagen.Config{Seed: 2, Scale: 1})}
	eager, lazy := segmentPair(t, 4<<10, docs...)

	extra, err := ParseDocumentString(universityXML, "university.xml")
	if err != nil {
		t.Fatal(err)
	}
	extra2, err := ParseDocumentString(universityXML, "university.xml")
	if err != nil {
		t.Fatal(err)
	}
	nextE, _, err := Upsert(eager, extra)
	if err != nil {
		t.Fatal(err)
	}
	nextL, _, err := Upsert(lazy, extra2)
	if err != nil {
		t.Fatal(err)
	}
	eager, lazy = nextE.(*System), nextL.(*System)
	if !reflect.DeepEqual(eager.Stats(), lazy.Stats()) {
		t.Fatalf("post-mutation Stats differ:\neager: %+v\nlazy:  %+v", eager.Stats(), lazy.Stats())
	}
	for _, q := range []string{"karen mike john", "databases", "karen algorithms"} {
		diffSearchSurface(t, eager, lazy, q, 2)
	}

	// The mutated (materialized) successor must persist in both formats —
	// this is gksd's checkpoint path after an ingest on a segment-served
	// system, and the segment writer's strict codec would reject any
	// posting-list invariant the mutation broke.
	dir := t.TempDir()
	for name, save := range map[string]func(string) error{
		"gks4": lazy.SaveSegmentFile,
		"gks3": lazy.SaveIndexFile,
	} {
		path := filepath.Join(dir, "mutated."+name)
		if err := save(path); err != nil {
			t.Fatalf("saving mutated segment-backed system as %s: %v", name, err)
		}
		re, err := LoadIndexFileOpts(path, SegmentOptions{})
		if err != nil {
			t.Fatalf("reloading mutated %s: %v", name, err)
		}
		diffSearchSurface(t, eager, re, "karen mike john", 2)
		if err := re.CloseIndex(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadIndexStats checks the no-decode stats fast path against the
// full loads for both physical formats.
func TestReadIndexStatsBothFormats(t *testing.T) {
	sys, err := IndexDocuments(datagen.Mondial(datagen.Config{Seed: 4, Scale: 1}))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g3 := filepath.Join(dir, "m.gksidx")
	g4 := filepath.Join(dir, "m.gks4")
	if err := sys.SaveIndexFile(g3); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveSegmentFile(g4); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{g3, g4} {
		st, err := ReadIndexStats(path)
		if err != nil {
			t.Fatalf("ReadIndexStats(%s): %v", path, err)
		}
		if !reflect.DeepEqual(st, sys.Stats()) {
			t.Fatalf("ReadIndexStats(%s) = %+v, want %+v", path, st, sys.Stats())
		}
	}
}

func filesEqual(t *testing.T, a, b string) bool {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}
