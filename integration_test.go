package gks_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	gks "repro"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// TestFullPipeline exercises the whole system the way a deployment would:
// generate a repository to XML files on disk, stream-index them without
// materializing trees, persist the index in the binary format, reload it,
// and verify the paper's planted Table 7 ground truth end to end.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Materialize the DBLP and SIGMOD analogs as XML files.
	paths := map[string]string{}
	for name, doc := range map[string]*xmltree.Document{
		"dblp":   datagen.PaperDBLP(1),
		"sigmod": datagen.PaperSigmod(1),
	} {
		path := filepath.Join(dir, name+".xml")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := xmltree.WriteXML(f, doc); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths[name] = path
	}

	for name, path := range paths {
		// 2. Stream-index from disk (single pass, no tree).
		streamed, err := gks.IndexFilesStreaming(path)
		if err != nil {
			t.Fatalf("%s: stream index: %v", name, err)
		}

		// 3. Persist in the compact binary format and reload. SaveIndex
		// writes the raw v2 binary image; SaveIndexFile wraps it in the
		// checksummed v3 envelope. Exercise both through the
		// auto-detecting loader.
		ixPath := filepath.Join(dir, name+".gksidx")
		var buf bytes.Buffer
		if err := streamed.SaveIndex(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ixPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := streamed.SaveIndexFile(filepath.Join(dir, name+"-v3.gksidx")); err != nil {
			t.Fatal(err)
		}
		if _, err := gks.LoadIndexFile(filepath.Join(dir, name+"-v3.gksidx")); err != nil {
			t.Fatalf("%s: load v3 snapshot: %v", name, err)
		}
		loaded, err := gks.LoadIndexFile(ixPath)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}

		// 4. Verify the planted ground truth through the loaded index.
		for _, pq := range datagen.PaperQueries() {
			if pq.Dataset != name || !pq.Exact {
				continue
			}
			q := gks.NewQuery(pq.Terms...)
			resp, err := loaded.SearchQuery(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != pq.PaperGKS1 {
				t.Errorf("%s %s: GKS s=1 = %d, want %d",
					name, pq.ID, len(resp.Results), pq.PaperGKS1)
			}
		}
	}
}

// TestBinaryIndexThroughFacade checks the binary format flows through the
// public API: save via the index layer, load via the facade's
// auto-detection.
func TestBinaryIndexThroughFacade(t *testing.T) {
	doc, err := gks.ParseDocumentString(`<lib>
  <book><title>systems</title><author>Ann</author><author>Bob</author></book>
  <book><title>queries</title><author>Ann</author><author>Cid</author></book>
</lib>`, "lib.xml")
	if err != nil {
		t.Fatal(err)
	}
	var repo xmltree.Repository
	repo.Add(doc)
	ix, err := index.Build(&repo, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	sys, err := gks.LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Search("ann bob", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Label != "book" {
		t.Fatalf("binary-format search = %+v", resp.Results)
	}
}

// TestConcurrentFacadeSearches validates the immutable-index concurrency
// contract at the public surface (run with -race).
func TestConcurrentFacadeSearches(t *testing.T) {
	sys, err := gks.IndexDocuments(datagen.PaperSigmod(1))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`"Anthony I. Wasserman" "Lawrence A. Rowe"`,
		`"Randy H. Katz"`,
		`"David A. Patterson" "Garth A. Gibson" "Randy H. Katz"`,
	}
	done := make(chan error, 24)
	for i := 0; i < 24; i++ {
		go func(i int) {
			resp, err := sys.Search(queries[i%len(queries)], 1)
			if err == nil && len(resp.Results) == 0 {
				err = os.ErrNotExist
			}
			if err == nil {
				sys.Insights(resp, 3)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 24; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
