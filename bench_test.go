package gks_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). `go test -bench=. -benchmem` regenerates every
// experiment; cmd/gksbench prints the full paper-style tables. Scale via
// GKS_BENCH_SCALE (default 1).

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	gks "repro"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/schema"
)

func benchScale() int {
	if v := os.Getenv("GKS_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// BenchmarkTable1ToyQueries reproduces Table 1: GKS vs ELCA vs SLCA on the
// Figure 1 tree.
func BenchmarkTable1ToyQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4IndexBuild reproduces Table 4: index build time over the
// dataset analogs (size and depth are printed by cmd/gksbench).
func BenchmarkTable4IndexBuild(b *testing.B) {
	repo := datagen.Repo(datagen.SwissProt(datagen.Config{Seed: 42, Scale: benchScale()}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(repo, index.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Categorize measures the node-categorization pass backing
// Table 5 (it is part of the single-pass index build).
func BenchmarkTable5Categorize(b *testing.B) {
	repo := datagen.Repo(datagen.Mondial(datagen.Config{Seed: 42, Scale: benchScale()}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := index.Build(repo, index.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if ix.Stats.EntityNodes == 0 {
			b.Fatal("no entities")
		}
	}
}

// BenchmarkFig8ResponseTimeVsListSize reproduces Figure 8's workload: an
// n=8 query over the NASA analog (response time scales with |S_L|).
func BenchmarkFig8ResponseTimeVsListSize(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.NASA(datagen.Config{Seed: 42, Scale: benchScale()})), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("author", "title", "reference", "year", "quasar", "pulsar", "galaxy", "cluster")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(q, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ResponseTimeVsKeywords reproduces Figure 9: n = 2, 8 and 16
// keyword queries over the SwissProt analog.
func BenchmarkFig9ResponseTimeVsKeywords(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.SwissProt(datagen.Config{Seed: 42, Scale: benchScale()})), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ix)
	kws := []string{
		"Entry", "Author", "Keyword", "Descr", "Ref", "Features",
		"Kinase", "Hydrolase", "Helicase", "Transferase", "Bacteria",
		"Eukaryota", "Zinc", "Membrane", "Signal", "Protease",
	}
	for _, n := range []int{2, 8, 16} {
		q := core.NewQuery(kws[:n]...)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Search(q, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Scalability reproduces Figure 10: the same query over 1x,
// 2x and 3x replicas of the SwissProt analog.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		repo := datagen.Replicate(func() *gks.Document {
			return datagen.SwissProt(datagen.Config{Seed: 42, Scale: benchScale()})
		}, replicas)
		ix, err := index.Build(repo, index.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		eng := core.NewEngine(ix)
		q := core.NewQuery("Kinase", "Author", "Zinc", "Membrane")
		b.Run("replicas="+strconv.Itoa(replicas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Search(q, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7Queries runs the full Table 6/7 workload: all fourteen
// paper queries with GKS at s=1 and s=|Q|/2 plus the SLCA baseline.
func BenchmarkTable7Queries(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.Table7(); err != nil { // warm the dataset cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8DI runs DI discovery over the Table 6 workload.
func BenchmarkTable8DI(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.Table8(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedbackSimulation runs the §7.5 simulated crowd panel.
func BenchmarkFeedbackSimulation(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.Feedback(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Feedback(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridQueries runs the §7.6 hybrid-repository experiment.
func BenchmarkHybridQueries(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	for i := 0; i < b.N; i++ {
		r, err := s.Hybrid()
		if err != nil {
			b.Fatal(err)
		}
		if r.Results != 8 {
			b.Fatalf("hybrid results = %d", r.Results)
		}
	}
}

// BenchmarkNaiveVsGKS contrasts the single-pass search with the Lemma 3
// subset-enumeration strawman at n=8, s=4.
func BenchmarkNaiveVsGKS(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.PaperSigmod(benchScale())), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ix)
	terms := []string{
		"Anthony I. Wasserman", "Lawrence A. Rowe", "S. Jerrold Kaplan",
		"Robert P. Trueblood", "David J. DeWitt", "Randy H. Katz",
		"David A. Patterson", "Garth A. Gibson",
	}
	q := core.NewQuery(terms...)
	lists := eng.PostingLists(q)
	b.Run("gks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(q, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lca.NaiveGKS(ix, lists, 4)
		}
	})
}

// BenchmarkRefinement runs the §7.4 DI-driven refinement walk-through.
func BenchmarkRefinement(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.Refinement(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Refinement(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaCategorization measures the schema-inference +
// re-categorization pass of the §2.2 future-work extension.
func BenchmarkSchemaCategorization(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.PaperSigmod(benchScale())), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := schema.Infer(ix)
		if cats := s.Categorize(ix); len(cats) != len(ix.Nodes) {
			b.Fatal("bad categorization")
		}
	}
}

// BenchmarkIndexFormats compares gob (v1) and binary (v2) index decode.
func BenchmarkIndexFormats(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.SwissProt(datagen.Config{Seed: 42, Scale: benchScale()})), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var gobBuf, binBuf bytes.Buffer
	if err := ix.Save(&gobBuf); err != nil {
		b.Fatal(err)
	}
	if err := ix.SaveBinary(&binBuf); err != nil {
		b.Fatal(err)
	}
	b.Run("decode-gob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.Load(bytes.NewReader(gobBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.Load(bytes.NewReader(binBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelIndexBuild compares serial and parallel multi-document
// index construction.
func BenchmarkParallelIndexBuild(b *testing.B) {
	repo := datagen.Plays(datagen.Config{Seed: 42, Scale: 8 * benchScale()})
	for _, workers := range []int{1, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.BuildParallel(repo, index.DefaultOptions(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchTopK contrasts full search with pruned top-k retrieval on
// a query with a long tail of single-keyword results (QD2-style).
func BenchmarkSearchTopK(b *testing.B) {
	ix, err := index.Build(datagen.Repo(datagen.PaperDBLP(benchScale())), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("Peter Buneman", "Wenfei Fan", "Scott Weinstein", "Prithviraj Banerjee")
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(q, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("top10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.SearchTopK(q, 1, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFSLCA runs the simplified MESSIAH baseline with inferred target
// types over the QM/QI workload (§7.3 comparison).
func BenchmarkFSLCA(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.FSLCA(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FSLCA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Sampled runs the stratified-sampled Figure 8 workload.
func BenchmarkFig8Sampled(b *testing.B) {
	s := experiments.NewSuite(benchScale())
	if _, err := s.Figure8Sampled(4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure8Sampled(4); err != nil {
			b.Fatal(err)
		}
	}
}
