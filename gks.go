// Package gks is a from-scratch Go implementation of Generic Keyword
// Search over XML data (Agarwal, Ramamritham, Agarwal — EDBT 2016).
//
// GKS generalizes LCA-based XML keyword search: for a query Q and a
// threshold s ≤ |Q|, it returns every meaningful XML node whose subtree
// contains at least min(s, |Q|) distinct query keywords, ranks the results
// with a potential-flow model, and mines Deeper Analytical Insights (DI) —
// the most relevant attribute keywords together with their schema context —
// from the Least Common Entity (LCE) nodes of the response. SLCA and ELCA
// baselines are included for comparison.
//
// Basic usage:
//
//	doc, _ := gks.ParseDocument(strings.NewReader(xmlData), "catalog.xml")
//	sys, _ := gks.IndexDocuments(doc)
//	resp, _ := sys.Search(`"Peter Buneman" "Wenfei Fan" 2001`, 1)
//	for _, r := range resp.Results {
//	    fmt.Println(r.ID, r.Label, r.Rank)
//	}
//	for _, in := range sys.Insights(resp, 5) {
//	    fmt.Println(in) // e.g. <inproceedings: journal: SIGMOD Record>
//	}
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package gks

import (
	"context"
	"fmt"
	"io"
	"sync"

	"errors"

	"repro/internal/core"
	"repro/internal/di"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/schema"
	"repro/internal/segment"
	"repro/internal/snippet"
	"repro/internal/textproc"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases form the public surface.
type (
	// Document is a parsed XML document (a labeled, ordered tree with
	// Dewey identifiers).
	Document = xmltree.Document
	// Node is one node of a document tree.
	Node = xmltree.Node
	// Query is a GKS keyword query; quoted phrases act as one keyword.
	Query = core.Query
	// Keyword is one unit of a query.
	Keyword = core.Keyword
	// Response is a ranked GKS search response R_Q(s).
	Response = core.Response
	// Result is one ranked response node.
	Result = core.Result
	// Insight is one Deeper Analytical Insight.
	Insight = di.Insight
	// IndexStats summarizes a built index (node-category distribution,
	// posting counts, depth).
	IndexStats = index.Stats
	// Category is the node-categorization bit set (AN/RN/EN/CN).
	Category = index.Category
)

// Node category bits (§2.2 of the paper).
const (
	AttributeNode  = index.Attribute
	RepeatingNode  = index.Repeating
	EntityNode     = index.Entity
	ConnectingNode = index.Connecting
)

// System bundles an index with the search and analysis engines. It is safe
// for concurrent readers once built.
type System struct {
	ix     *index.Index
	engine *core.Engine
	an     *di.Analyzer
	repo   *xmltree.Repository // nil when loaded from a saved index
	seg    *segment.Reader     // nil unless loaded from a GKS4 segment

	vocabOnce sync.Once
	vocab     map[string]int
}

// ParseDocument parses one XML document from r. XML attributes are
// normalized into leading child elements.
func ParseDocument(r io.Reader, name string) (*Document, error) {
	return xmltree.Parse(r, 0, name)
}

// ParseDocumentString parses an XML document held in a string.
func ParseDocumentString(src, name string) (*Document, error) {
	return xmltree.ParseString(src, 0, name)
}

// ParseDocumentFile parses one XML document from the file at path; the
// path becomes the document name.
func ParseDocumentFile(path string) (*Document, error) {
	return xmltree.ParseFile(path, 0)
}

// BuildDocument wraps a programmatically built tree (see E, ET, T) in a
// document and assigns Dewey identifiers.
func BuildDocument(name string, root *Node) *Document {
	return xmltree.NewDocument(name, 0, root)
}

// E constructs an element node with the given label and children.
func E(label string, children ...*Node) *Node { return xmltree.E(label, children...) }

// ET constructs an element that directly contains a single text value.
func ET(label, value string) *Node { return xmltree.ET(label, value) }

// T constructs a text node.
func T(value string) *Node { return xmltree.T(value) }

// IndexDocuments indexes one or more documents as a single searchable
// repository. Documents are renumbered in order.
func IndexDocuments(docs ...*Document) (*System, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("gks: no documents")
	}
	repo := &xmltree.Repository{}
	for _, d := range docs {
		repo.Add(d)
	}
	ix, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return newSystem(ix, repo), nil
}

// IndexFiles parses and indexes the XML files at the given paths.
func IndexFiles(paths ...string) (*System, error) {
	docs := make([]*Document, 0, len(paths))
	for _, p := range paths {
		d, err := xmltree.ParseFile(p, 0)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return IndexDocuments(docs...)
}

// FileError records one input file that failed to parse during lenient
// indexing.
type FileError struct {
	Path string
	Err  error
}

func (e FileError) Error() string { return e.Path + ": " + e.Err.Error() }

func (e FileError) Unwrap() error { return e.Err }

// IndexFilesLenient parses and indexes the XML files at the given paths in
// partial-failure mode: files that fail to open or parse are skipped and
// reported in the returned FileError list instead of failing the whole
// batch — the ingestion semantics a production crawler needs when one bad
// document must not block a million good ones. An error is returned only
// when no file could be indexed at all.
func IndexFilesLenient(paths ...string) (*System, []FileError, error) {
	docs := make([]*Document, 0, len(paths))
	var skipped []FileError
	for _, p := range paths {
		d, err := xmltree.ParseFile(p, 0)
		if err != nil {
			skipped = append(skipped, FileError{Path: p, Err: err})
			continue
		}
		docs = append(docs, d)
	}
	if len(docs) == 0 {
		if len(skipped) > 0 {
			return nil, skipped, fmt.Errorf("gks: no indexable files: all %d input file(s) failed to parse", len(skipped))
		}
		return nil, nil, fmt.Errorf("gks: no documents")
	}
	sys, err := IndexDocuments(docs...)
	return sys, skipped, err
}

// IndexFilesStreaming indexes the XML files in a single streaming pass
// each, without materializing the document trees — peak memory is
// O(depth + index), which is how the paper-scale 1.45 GB DBLP dump fits on
// a laptop. Tree-dependent features (Chunk, Snippet, XPath, AddDocuments)
// are unavailable on the resulting system; everything else behaves
// identically to IndexFiles (the two builds produce equal indexes).
func IndexFilesStreaming(paths ...string) (*System, error) {
	ix, err := index.BuildStreamFiles(paths, index.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return newSystem(ix, nil), nil
}

// ErrCorruptIndex reports that a persisted index is damaged — truncated,
// bit-flipped, or not an index at all. LoadIndex and LoadIndexFile wrap it
// into their errors (match with errors.Is); the gksd startup and reload
// paths use it to distinguish a bad snapshot from a missing one.
var ErrCorruptIndex = index.ErrCorrupt

// LoadIndex restores a system from an index previously written with
// SaveIndex. Result chunks (Chunk) are unavailable without the documents.
func LoadIndex(r io.Reader) (*System, error) {
	ix, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	return newSystem(ix, nil), nil
}

// LoadIndexFile restores a system from an index file of any persisted
// format: a GKS4 segment is opened lazily (footer + meta only, posting
// blocks fetched on demand behind the default block cache); GKS3/GKSI/gob
// files decode fully into memory as before.
func LoadIndexFile(path string) (*System, error) {
	return LoadIndexFileOpts(path, SegmentOptions{})
}

// SegmentOptions tunes how a GKS4 segment is served when a load hits one;
// the zero value is ready to use. They are ignored for eager formats.
type SegmentOptions struct {
	// Cache is a shared block cache (see segment.NewBlockCache); nil gives
	// the reader a private cache of CacheBytes capacity. Sharing one cache
	// across hot-reload generations keeps the process-wide block budget a
	// single number.
	Cache *segment.BlockCache
	// CacheBytes is the private cache capacity when Cache is nil; 0 means
	// segment.DefaultCacheBytes.
	CacheBytes int64
	// Metrics receives block-cache and block-fetch observations (the obs
	// Registry implements it). Nil discards them.
	Metrics segment.Metrics
}

// LoadIndexFileOpts is LoadIndexFile with explicit segment-serving
// options.
func LoadIndexFileOpts(path string, opts SegmentOptions) (*System, error) {
	if segment.IsSegmentFile(path) {
		r, err := segment.OpenFile(path, segment.Options{
			Cache:      opts.Cache,
			CacheBytes: opts.CacheBytes,
			Metrics:    opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		sys := newSystem(r.Index(), nil)
		sys.seg = r
		return sys, nil
	}
	ix, err := index.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return newSystem(ix, nil), nil
}

// Segment returns the GKS4 segment reader backing this system, or nil
// when the index is fully resident (built in process or loaded from an
// eager format).
func (s *System) Segment() *segment.Reader { return s.seg }

// CloseIndex releases the resources of a segment-backed system (the file
// descriptor and its block-cache share). It must only be called once no
// searches are in flight; retired hot-reload generations that cannot
// guarantee that simply drop the System and let the finalizer reclaim the
// descriptor. No-op for fully resident systems.
func (s *System) CloseIndex() error {
	if s.seg == nil {
		return nil
	}
	return s.seg.Close()
}

func newSystem(ix *index.Index, repo *xmltree.Repository) *System {
	eng := core.NewEngine(ix)
	return &System{ix: ix, engine: eng, an: di.New(eng), repo: repo}
}

// Packed returns a system serving the same documents through the
// DAG-compressed packed node table; the receiver is unchanged (and
// returned as-is when already packed). A packed system stays packed
// across live ingestion: upserts extend the pack incrementally at
// O(document) cost against the existing shape table, deletes tombstone,
// and the accumulated drift from the canonical pack is measured by
// PackDebt and paid down by RepackIfNeeded (gksd runs it at checkpoints).
func (s *System) Packed() *System {
	if s.ix.IsPacked() {
		return s
	}
	return newSystem(s.ix.Pack(), s.repo)
}

// SaveIndex persists the index ("a onetime activity", §2.4) in the legacy
// gob format. Prefer SaveIndexFile, which writes the checksummed snapshot
// format; LoadIndex and LoadIndexFile read both.
func (s *System) SaveIndex(w io.Writer) error { return s.ix.Save(w) }

// SaveIndexFile persists the index to a file in the checksummed snapshot
// format (v3), atomically: a crash or full disk mid-save never destroys a
// previous snapshot at path.
func (s *System) SaveIndexFile(path string) error { return s.ix.SaveFile(path) }

// SaveSnapshot streams the index in the checksummed snapshot format (v3)
// — the same bytes SaveIndexFile writes, without the atomic-file
// discipline. The replication leader uses it to serve point-in-time
// snapshots to joining followers over HTTP. A segment-backed system
// streams its lists from the segment one at a time, so a leader serving
// a corpus larger than RAM stays memory-bounded here too.
func (s *System) SaveSnapshot(w io.Writer) error { return s.ix.SaveSnapshot(w) }

// SaveSegmentFile persists the index as a GKS4 block-compressed segment
// at path, atomically. A segment-loaded system round-trips without
// materializing its postings; an in-memory system converts down. This is
// the `gks index -format=gks4` / `gks convert` backend.
func (s *System) SaveSegmentFile(path string) error {
	return segment.WriteFile(path, s.ix)
}

// ReadIndexStats returns the statistics of a persisted index at path
// without building a searchable system, using the cheapest path the
// format allows: a GKS4 segment reads only its footer (no posting block,
// not even the node table is decoded); a GKS3 snapshot is skimmed in one
// streaming, CRC-verified pass with O(1) memory; legacy GKSI/gob files
// fall back to a full decode.
func ReadIndexStats(path string) (IndexStats, error) {
	if segment.IsSegmentFile(path) {
		return segment.ReadStats(path)
	}
	st, err := index.SkimSnapshotStats(path)
	if err == nil {
		return st, nil
	}
	if !errors.Is(err, index.ErrSkimUnsupported) {
		return IndexStats{}, err
	}
	ix, err := index.LoadFile(path)
	if err != nil {
		return IndexStats{}, err
	}
	return ix.Stats, nil
}

// ValidateIndex checks the structural invariants of the underlying index
// (label/parent/subtree ranges, sorted posting lists). The gksd reload
// path runs it between loading a candidate snapshot and swapping it into
// service.
func (s *System) ValidateIndex() error { return s.ix.Validate() }

// Stats returns the index statistics (Tables 4–5 of the paper).
func (s *System) Stats() IndexStats { return s.ix.Stats }

// KeywordFreq pairs a normalized keyword with its posting-list length.
type KeywordFreq = index.KeywordFreq

// LabelCount pairs an element label with instance and category counts.
type LabelCount = index.LabelCount

// TopKeywords returns the k most frequent normalized keywords (k <= 0
// returns all).
func (s *System) TopKeywords(k int) []KeywordFreq { return s.ix.TopKeywords(k) }

// LabelHistogram returns per-label instance counts with category splits.
func (s *System) LabelHistogram() []LabelCount { return s.ix.LabelHistogram() }

// DepthHistogram returns element counts per tree depth (0 = roots).
func (s *System) DepthHistogram() []int { return s.ix.DepthHistogram() }

// ParseQuery parses a query string with double-quoted phrases.
func ParseQuery(input string) Query { return core.ParseQuery(input) }

// NewQuery builds a query from pre-split terms; terms containing spaces
// become phrase keywords.
func NewQuery(terms ...string) Query { return core.NewQuery(terms...) }

// Search parses the query string and runs GKS with the given threshold s
// (clamped to [1, |Q|]).
func (s *System) Search(query string, threshold int) (*Response, error) {
	return s.engine.Search(ParseQuery(query), threshold)
}

// SearchQuery runs GKS for an already-built query.
func (s *System) SearchQuery(q Query, threshold int) (*Response, error) {
	return s.engine.Search(q, threshold)
}

// SearchBestEffort finds the largest threshold s with a non-empty response
// and returns it — best-effort AND semantics: as much of the query as the
// data supports. The effective s is reported in Response.S.
func (s *System) SearchBestEffort(query string) (*Response, error) {
	return s.engine.SearchBestEffort(ParseQuery(query))
}

// SearchTopK returns the k highest-ranked response nodes, pruning
// candidates whose rank upper bound (their distinct-keyword count) cannot
// reach the top k.
func (s *System) SearchTopK(query string, threshold, k int) (*Response, error) {
	return s.engine.SearchTopK(ParseQuery(query), threshold, k)
}

// SearchContext is Search honoring cancellation and deadlines from ctx.
// Cancellation is cooperative: the engine polls ctx inside the S_L merge,
// the window scan and the ranking loop, so a timed-out request frees its
// CPU at the next checkpoint rather than completing in the background.
func (s *System) SearchContext(ctx context.Context, query string, threshold int) (*Response, error) {
	return s.engine.SearchCtx(ctx, ParseQuery(query), threshold)
}

// SearchBestEffortContext is SearchBestEffort honoring ctx.
func (s *System) SearchBestEffortContext(ctx context.Context, query string) (*Response, error) {
	return s.engine.SearchBestEffortCtx(ctx, ParseQuery(query))
}

// SearchTopKContext is SearchTopK honoring ctx.
func (s *System) SearchTopKContext(ctx context.Context, query string, threshold, k int) (*Response, error) {
	return s.engine.SearchTopKCtx(ctx, ParseQuery(query), threshold, k)
}

// ExplainContext is Explain honoring ctx. Cancellation is cooperative
// like the search paths: the engine polls ctx between pipeline stages, so
// a timed-out explain frees its CPU instead of finishing detached.
func (s *System) ExplainContext(ctx context.Context, query string, threshold int) (*Explanation, error) {
	return s.engine.ExplainCtx(ctx, ParseQuery(query), threshold)
}

// Explanation traces a search through the GKS pipeline (posting sizes,
// |S_L|, window blocks, candidates, witness survivors and stage timings).
type Explanation = core.Explanation

// Explain runs the query while recording pipeline diagnostics; the embedded
// Response is identical to Search's.
func (s *System) Explain(query string, threshold int) (*Explanation, error) {
	return s.engine.Explain(ParseQuery(query), threshold)
}

// Insights discovers the top-m Deeper Analytical Insights of a response
// (§2.3, §6.2). m <= 0 returns all insights.
func (s *System) Insights(resp *Response, m int) []Insight {
	return s.an.Discover(resp, m)
}

// InsightRound is one step of recursive DI discovery.
type InsightRound = di.Round

// InsightsRecursive applies DI discovery recursively (§2.3): each round
// feeds the previous round's top-m insight values back as a query.
func (s *System) InsightsRecursive(q Query, threshold, m, rounds int) ([]InsightRound, error) {
	return s.an.DiscoverRecursive(q, threshold, m, rounds)
}

// Refinements proposes sub-queries matching the keyword subsets of the
// top-ranked results (§6.1).
func (s *System) Refinements(resp *Response, topK int) []Query {
	return di.Refinements(resp, topK)
}

// Augmentations combines a query with top insight values — the "adding
// keywords" refinement direction of §7.4.
func (s *System) Augmentations(q Query, insights []Insight, topK int) []Query {
	return di.Augmentations(q, insights, topK)
}

// SLCA runs the Smallest-LCA baseline and returns the Dewey IDs of the
// answer nodes in document order.
func (s *System) SLCA(q Query) []string {
	return s.ordsToIDs(lca.SLCA(s.ix, s.engine.PostingLists(q)))
}

// ELCA runs the Exclusive-LCA baseline.
func (s *System) ELCA(q Query) []string {
	return s.ordsToIDs(lca.ELCA(s.ix, s.engine.PostingLists(q)))
}

func (s *System) ordsToIDs(ords []int32) []string {
	out := make([]string, len(ords))
	for i, o := range ords {
		out[i] = s.ix.IDOf(o).String()
	}
	return out
}

// XPath evaluates a structural query (a compact XPath subset — child and
// descendant axes, wildcards, value/existence/positional predicates; see
// internal/xpath) over the indexed documents. It is the structured-query
// counterpoint the paper's introduction motivates GKS against, and it
// requires the system to have been built from documents.
func (s *System) XPath(expr string) ([]*Node, error) {
	if s.repo == nil {
		return nil, fmt.Errorf("gks: XPath unavailable on a system loaded from a saved index")
	}
	e, err := xpath.Compile(expr)
	if err != nil {
		return nil, err
	}
	return e.EvaluateRepo(s.repo), nil
}

// SchemaEdge is one parent→child relationship of the inferred schema.
type SchemaEdge = schema.Edge

// Schema infers the structural schema summary (parent→child element edges
// with repetition flags) from the indexed instances.
func (s *System) Schema() []SchemaEdge {
	return schema.Infer(s.ix).Edges()
}

// ApplySchemaCategorization re-categorizes every node against the inferred
// schema instead of its own instance — the extension the paper proposes as
// future work in §2.2. A node whose label repeats *somewhere* in the data
// counts as repeating everywhere, so e.g. single-author articles classify
// as entity nodes like their multi-author siblings. It returns the number
// of nodes whose category changed; subsequent searches use the new entity
// structure.
func (s *System) ApplySchemaCategorization() int {
	return schema.Apply(s.ix, schema.Infer(s.ix).Categorize(s.ix))
}

// NodeTableBytes reports the exact heap footprint of the index's node
// table backing storage — flat NodeInfo records or the packed
// (DAG-compressed) arrays, whichever representation the system serves
// from. See index.NodeTableBytes.
func (s *System) NodeTableBytes() int64 { return s.ix.NodeTableBytes() }

// CategoryOf reports the node categorization of the element with the given
// Dewey ID string (e.g. "0.0.1"), and whether the node exists.
func (s *System) CategoryOf(deweyID string) (Category, bool) {
	id, err := parseDewey(deweyID)
	if err != nil {
		return 0, false
	}
	ord, ok := s.ix.OrdinalOf(id)
	if !ok {
		return 0, false
	}
	return s.ix.CatOf(ord), true
}

// AddDocuments indexes additional documents into the system. The
// underlying index is rebuilt by merging (existing indexes are immutable),
// so in-flight searches on other goroutines keep their consistent view;
// the System itself must not be searched concurrently with AddDocuments.
func (s *System) AddDocuments(docs ...*Document) error {
	if s.repo == nil {
		return fmt.Errorf("gks: cannot add documents to a system loaded from a saved index")
	}
	ix := s.ix
	for _, d := range docs {
		next, err := index.Append(ix, d, index.DefaultOptions())
		if err != nil {
			return err
		}
		s.repo.Docs = append(s.repo.Docs, d)
		ix = next
	}
	s.ix = ix
	s.engine = core.NewEngine(ix)
	s.an = di.New(s.engine)
	s.vocabOnce = sync.Once{}
	s.vocab = nil
	return nil
}

// SnippetLine is one line of a highlighted result preview.
type SnippetLine = snippet.Line

// Snippet renders a compact, match-highlighted preview of a result's value
// lines (maxLines <= 0 uses a default). It requires documents.
func (s *System) Snippet(resp *Response, res Result, maxLines int) ([]SnippetLine, error) {
	if s.repo == nil {
		return nil, fmt.Errorf("gks: snippets unavailable on a system loaded from a saved index")
	}
	n := s.repo.FindByID(res.ID)
	if n == nil {
		return nil, fmt.Errorf("gks: node %s not found", res.ID)
	}
	return snippet.Build(resp, n, snippet.Options{MaxLines: maxLines, KeepUnmatched: true}), nil
}

// TypeScore is one inferred result type (XReal-style confidence).
type TypeScore = di.TypeScore

// InferResultTypes ranks entity labels by their confidence of being the
// query's target node type — the related-work "result type deduction"
// (XReal/XBridge) direction, driven by how many entities of each label
// contain every query keyword.
func (s *System) InferResultTypes(query string, topK int) []TypeScore {
	return di.InferResultTypes(s.engine, ParseQuery(query), topK)
}

// Suggestion is a did-you-mean candidate for a misspelled keyword.
type Suggestion = textproc.Suggestion

// Suggest returns the indexed keywords within maxDist edits of the input —
// did-you-mean for keywords with empty posting lists.
func (s *System) Suggest(keyword string, maxDist, topK int) []Suggestion {
	s.vocabOnce.Do(func() {
		// Stats.DistinctKeywords sizes the map for lazy indexes too, where
		// the Postings map is nil but the term directory is resident.
		s.vocab = make(map[string]int, s.ix.Stats.DistinctKeywords)
		s.ix.ForEachKeyword(func(kw string, live int) {
			s.vocab[kw] = live
		})
	})
	return textproc.Suggest(keyword, s.vocab, maxDist, topK)
}

// HasMatches reports whether the keyword (after normalization) has any
// postings — the trigger for Suggest.
func (s *System) HasMatches(keyword string) bool {
	return len(s.ix.Lookup(keyword)) > 0
}

// PrunedChunk renders a MaxMatch-style pruned XML fragment of a result:
// matching branches plus their attribute context, with irrelevant siblings
// removed. It requires documents.
func (s *System) PrunedChunk(resp *Response, res Result) (string, error) {
	if s.repo == nil {
		return "", fmt.Errorf("gks: chunks unavailable on a system loaded from a saved index")
	}
	n := s.repo.FindByID(res.ID)
	if n == nil {
		return "", fmt.Errorf("gks: node %s not found", res.ID)
	}
	pruned := snippet.PrunedClone(resp, n)
	if pruned == nil {
		return "", nil
	}
	return renderChunk(pruned), nil
}

// Chunk renders the XML subtree of a result — the "well-constructed XML
// chunk" the paper's system returns. It requires the system to have been
// built from documents (not loaded from a bare index).
func (s *System) Chunk(res Result) (string, error) {
	if s.repo == nil {
		return "", fmt.Errorf("gks: chunks unavailable on a system loaded from a saved index")
	}
	n := s.repo.FindByID(res.ID)
	if n == nil {
		return "", fmt.Errorf("gks: node %s not found", res.ID)
	}
	return renderChunk(n), nil
}
