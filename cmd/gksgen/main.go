// Command gksgen materializes the synthetic dataset analogs used by the
// experiments (DESIGN.md §3) as XML files, so they can be inspected,
// re-indexed with cmd/gks, or fed to other tools.
//
// Usage:
//
//	gksgen -dataset dblp -scale 1 -out dblp.xml
//	gksgen -dataset plays -scale 2 -out playdir/   (multi-file datasets)
//
// Datasets: dblp, sigmod, mondial, interpro, swissprot, protein, nasa,
// treebank, plays, xmark. The dblp and sigmod analogs carry the paper's Table 6
// query ground truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "dblp", "dataset to generate")
	scale := flag.Int("scale", 1, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output file (or directory for multi-file datasets)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gksgen: -out is required")
		os.Exit(2)
	}

	cfg := datagen.Config{Seed: *seed, Scale: *scale}
	var docs []*xmltree.Document
	switch *dataset {
	case "dblp":
		docs = []*xmltree.Document{datagen.PaperDBLP(*scale)}
	case "sigmod":
		docs = []*xmltree.Document{datagen.PaperSigmod(*scale)}
	case "mondial":
		docs = []*xmltree.Document{datagen.Mondial(cfg)}
	case "interpro":
		docs = []*xmltree.Document{datagen.InterPro(cfg)}
	case "swissprot":
		docs = []*xmltree.Document{datagen.SwissProt(cfg)}
	case "protein":
		docs = []*xmltree.Document{datagen.ProteinSequence(cfg)}
	case "nasa":
		docs = []*xmltree.Document{datagen.NASA(cfg)}
	case "treebank":
		docs = []*xmltree.Document{datagen.TreeBank(cfg)}
	case "xmark":
		docs = []*xmltree.Document{datagen.XMark(cfg)}
	case "plays":
		docs = datagen.Plays(cfg).Docs
	default:
		fmt.Fprintf(os.Stderr, "gksgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if len(docs) == 1 {
		if err := writeDoc(*out, docs[0]); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nodes)\n", *out, docs[0].NodeCount())
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, d := range docs {
		path := filepath.Join(*out, filepath.Base(d.Name))
		if err := writeDoc(path, d); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nodes)\n", path, d.NodeCount())
	}
}

func writeDoc(path string, d *xmltree.Document) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xmltree.WriteXML(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gksgen:", err)
	os.Exit(1)
}
