// Command gksrouter fronts a replicated gksd cluster: it fans read
// queries across the replicas with health-gated failover and forwards
// mutations to the leader.
//
//	gksrouter -replicas http://10.0.0.2:8791,http://10.0.0.3:8791 \
//	          -leader http://10.0.0.1:8791 -addr :8790
//
// Each replica is probed at /healthz?ready on an interval; a replica
// that fails its probe — or fails a relayed query — is ejected from the
// rotation and re-admitted the moment its probe passes again (a
// restarted follower turns ready once it has caught back up to the
// leader). While any configured replica is out of rotation the set is
// degraded: relayed answers on /search, /insights and /refine are
// re-marked "partial": true and stamped Cache-Control: no-store, the
// same contract the engine applies to per-shard failures, so callers
// and caches can tell a full answer from a best-effort one.
//
// The router's own /healthz reports per-backend health; ?ready fails
// only when no replica is serving. /metrics exposes request counters
// and latencies for the router process itself.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8790", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs queries fan across (required)")
	leaderURL := flag.String("leader", "", "leader base URL mutations are forwarded to (optional; omit for a read-only router)")
	healthEvery := flag.Duration("health-interval", time.Second, "replica readiness probe interval")
	timeout := flag.Duration("timeout", 5*time.Second, "per-relay-attempt timeout")
	retries := flag.Int("retries", 2, "additional replicas to try after a failed relay")
	grace := flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress per-request access log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "gksrouter ", log.LstdFlags)
	if *replicas == "" {
		log.Fatal("gksrouter: -replicas is required")
	}
	var backends []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			backends = append(backends, u)
		}
	}

	router, err := replica.NewRouter(replica.RouterConfig{
		Replicas:    backends,
		Leader:      *leaderURL,
		HealthEvery: *healthEvery,
		Timeout:     *timeout,
		Retries:     *retries,
		Logger:      logger,
	})
	if err != nil {
		log.Fatal("gksrouter: ", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go router.Run(ctx)

	reg := obs.NewRegistry()
	mw := []server.Middleware{server.WithMetrics(reg)}
	if !*quiet {
		mw = append(mw, server.WithAccessLog(logger))
	}
	mw = append(mw, server.WithRecovery(reg, logger))

	mux := http.NewServeMux()
	router.Routes(mux)
	root := http.NewServeMux()
	root.Handle("/", server.Chain(mux, mw...))
	root.Handle("/metrics", server.Chain(reg.Handler(), server.WithRecovery(reg, logger)))

	logger.Printf("routing across %d replica(s) on %s (leader=%q timeout=%s retries=%d)",
		len(backends), *addr, *leaderURL, *timeout, *retries)
	srv := server.NewHTTPServer(*addr, root, *timeout)
	if err := server.Serve(ctx, srv, *grace); err != nil {
		log.Fatal("gksrouter: ", err)
	}
	logger.Print("drained in-flight requests, shut down cleanly")
}
