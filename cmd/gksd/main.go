// Command gksd serves a GKS index over HTTP with a JSON API — see
// internal/server for the endpoint list.
//
// Usage:
//
//	gksd -index repo.gksidx -addr :8791
//	gksd -files dblp.xml,sigmod.xml -addr 127.0.0.1:8791
//
// Example session:
//
//	curl 'localhost:8791/search?q="Peter Buneman" "Wenfei Fan"&s=2'
//	curl 'localhost:8791/insights?q=karen&m=5'
//	curl 'localhost:8791/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	gks "repro"
	"repro/internal/server"
)

func main() {
	indexPath := flag.String("index", "", "saved index file")
	files := flag.String("files", "", "comma-separated XML files to index on startup")
	addr := flag.String("addr", "127.0.0.1:8791", "listen address")
	schemaCats := flag.Bool("schema", false, "apply schema-aware categorization at startup")
	cacheSize := flag.Int("cache", 256, "LRU entries for /search responses (0 disables)")
	flag.Parse()

	var sys *gks.System
	var err error
	switch {
	case *files != "":
		sys, err = gks.IndexFiles(strings.Split(*files, ",")...)
	case *indexPath != "":
		sys, err = gks.LoadIndexFile(*indexPath)
	default:
		err = fmt.Errorf("provide -index or -files")
	}
	if err != nil {
		log.Fatal("gksd: ", err)
	}
	if *schemaCats {
		changed := sys.ApplySchemaCategorization()
		log.Printf("schema-aware categorization: %d node(s) reclassified", changed)
	}
	st := sys.Stats()
	log.Printf("serving %d document(s), %d elements, %d entity nodes on %s",
		st.Documents, st.ElementNodes, st.EntityNodes, *addr)
	log.Fatal(http.ListenAndServe(*addr, server.NewWithCache(sys, *cacheSize)))
}
