// Command gksd serves a GKS index over HTTP with a JSON API — see
// internal/server for the endpoint list. The serving stack is
// production-shaped: panic recovery, structured access logs, per-request
// timeouts, load shedding at a concurrency cap, Prometheus-format metrics
// at /metrics, a liveness probe at /healthz, graceful drain on
// SIGINT/SIGTERM, and zero-downtime snapshot reload via POST /admin/reload
// or SIGHUP.
//
// Usage:
//
//	gksd -index repo.gksidx -addr :8791
//	gksd -files dblp.xml,sigmod.xml -addr 127.0.0.1:8791 \
//	     -timeout 5s -max-inflight 128 -cache 1024
//
// Example session:
//
//	curl 'localhost:8791/search?q="Peter Buneman" "Wenfei Fan"&s=2'
//	curl 'localhost:8791/insights?q=karen&m=5'
//	curl 'localhost:8791/metrics'
//	gks index -out repo.gksidx updated.xml && curl -X POST localhost:8791/admin/reload
//
// Reload repeats whatever the daemon booted from — it re-reads the -index
// snapshot (replaced atomically on disk by `gks index`) or re-parses the
// -files list — off the request path, validates the result, and swaps it
// in. If the new snapshot is corrupt or unreadable, the old index keeps
// serving and the error is surfaced in the reload response, the logs, and
// the gks_snapshot_reloads_total{result="failure"} counter.
//
// Live ingestion (POST /admin/docs, DELETE /admin/docs/{name}) adds,
// replaces and deletes single documents without a rebuild or restart. When
// the daemon booted from -index or -index-manifest, mutations are durable
// through a write-ahead log: each one is appended to the log (group
// commit — concurrent writers share fsyncs) and acknowledged once its
// record is on disk, while a background checkpointer folds the log into
// the boot snapshot every -checkpoint-every mutations (and at shutdown)
// and truncates the superseded segments. Boot and reload replay any
// surviving log tail over the snapshot, so acknowledged mutations survive
// a crash at any point. The log lives in -wal-dir (default: the boot path
// plus ".wal"); -wal-dir=off restores the old snapshot-per-mutation
// behavior. When the daemon booted from -files, mutations are served from
// memory only — a reload re-parses the original file list and discards
// them; the mutation response says "persisted": false so callers know.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	gks "repro"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/segment"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	indexPath := flag.String("index", "", "saved index file")
	manifestPath := flag.String("index-manifest", "", "saved shard-set manifest (serves a sharded index with scatter-gather search)")
	files := flag.String("files", "", "comma-separated XML files to index on startup")
	shardN := flag.Int("shards", 1, "with -files: partition the documents into N index shards built in parallel")
	partial := flag.Bool("partial-results", false, "with a sharded index: answer with partial results when a shard fails instead of failing the query")
	addr := flag.String("addr", "127.0.0.1:8791", "listen address")
	schemaCats := flag.Bool("schema", false, "apply schema-aware categorization at startup (and on reload)")
	lenient := flag.Bool("lenient", false, "with -files: skip unparsable XML files (logged) instead of failing the batch")
	cacheSize := flag.Int("cache", 256, "LRU entries for /search responses (0 disables)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout; exceeding it answers 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent request cap; excess load sheds with 503 (0 disables)")
	grace := flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress per-request access log lines")
	walDirFlag := flag.String("wal-dir", "", "write-ahead-log directory for live mutations (default: boot path + \".wal\"; \"off\" = snapshot per mutation; ignored with -files)")
	checkpointEvery := flag.Int("checkpoint-every", 64, "durable mutations between background WAL checkpoints (0 = checkpoint only at shutdown)")
	repackThreshold := flag.Float64("repack-threshold", 0.3, "pack-debt fraction (delta-appended + tombstoned rows / total) past which a checkpoint repacks the node table (0 disables)")
	follow := flag.String("follow", "", "run as a replication follower of this leader base URL (requires -index; mutations are rejected locally)")
	replicaMaxLag := flag.Uint64("replica-max-lag", 4096, "with -follow: record lag beyond which /healthz?ready reports not ready")
	blockCacheMB := flag.Int("block-cache-mb", 64, "posting-block cache capacity in MiB when serving a GKS4 segment (the process-wide budget, shared across hot reloads)")
	flag.Parse()

	logger := log.New(os.Stderr, "gksd ", log.LstdFlags)
	reg := obs.NewRegistry()

	// One block cache for the whole process: hot reloads open a fresh
	// segment reader per generation, but they all charge the same byte
	// budget, so -block-cache-mb bounds resident posting blocks globally
	// rather than per generation. Idle (zero-cost) unless a GKS4 segment
	// is actually served.
	blockCache := segment.NewBlockCacheMetrics(int64(*blockCacheMB)<<20, reg)

	// A follower mirrors a leader's WAL into local state: it needs the
	// single-index + WAL configuration, and nothing else makes sense.
	if *follow != "" {
		*follow = strings.TrimRight(*follow, "/")
		switch {
		case *indexPath == "":
			log.Fatal("gksd: -follow requires -index (the local snapshot path)")
		case *files != "" || *manifestPath != "":
			log.Fatal("gksd: -follow is incompatible with -files and -index-manifest")
		case *walDirFlag == "off":
			log.Fatal("gksd: -follow requires a WAL (-wal-dir=off is incompatible)")
		}
	}

	// loadSys builds a serving system from the configured source. It runs
	// once at boot and again on every reload trigger, so a reload picks up
	// a replaced snapshot (or whole shard set) on disk, or re-parses
	// updated XML inputs. Sharded systems get the metrics sink wired in
	// before they serve their first request.
	loadSys := func() (gks.Searcher, error) {
		var sys gks.Searcher
		var err error
		switch {
		case *files != "":
			paths := strings.Split(*files, ",")
			if *shardN > 1 {
				opts := gks.DefaultShardOptions(*shardN)
				opts.AllowPartial = *partial
				var set *gks.ShardedSystem
				set, err = shardedFromFiles(opts, paths, *lenient)
				sys = set
			} else if *lenient {
				var skipped []gks.FileError
				var single *gks.System
				single, skipped, err = gks.IndexFilesLenient(paths...)
				for _, fe := range skipped {
					log.Printf("gksd: lenient: skipping %s: %v", fe.Path, fe.Err)
				}
				sys = single
			} else {
				sys, err = gks.IndexFiles(paths...)
			}
		case *manifestPath != "":
			var set *gks.ShardedSystem
			set, err = gks.LoadShardSet(*manifestPath)
			if err == nil {
				set.SetAllowPartial(*partial)
			}
			sys = set
		case *indexPath != "":
			sys, err = gks.LoadIndexFileOpts(*indexPath, gks.SegmentOptions{
				Cache:   blockCache,
				Metrics: reg,
			})
		default:
			err = fmt.Errorf("provide -index, -index-manifest or -files")
		}
		if err != nil {
			return nil, err
		}
		if *schemaCats {
			changed := sys.ApplySchemaCategorization()
			log.Printf("schema-aware categorization: %d node(s) reclassified", changed)
		}
		if set, ok := sys.(*gks.ShardedSystem); ok {
			set.SetMetrics(reg)
			reg.SetShardCount(set.NumShards())
		} else {
			reg.SetShardCount(1)
		}
		reg.SetDocs(sys.Stats().Documents)
		return sys, nil
	}

	// WAL mode (snapshot/manifest boots): open the mutation log and wrap
	// the loader so boot AND every reload fold the log's surviving tail
	// into the freshly loaded snapshot. Replay is idempotent across the
	// snapshot/log overlap, so a reload right after a checkpoint — or a
	// crash between append, checkpoint and truncate — always recovers to
	// exactly the acknowledged state.
	var walLog *wal.Log
	walDir := *walDirFlag
	switch {
	case *files != "":
		if walDir != "" && walDir != "off" {
			logger.Print("note: -wal-dir is ignored with -files (mutations are in-memory by design)")
		}
		walDir = ""
	case walDir == "off":
		walDir = ""
	case walDir == "":
		if *manifestPath != "" {
			walDir = *manifestPath + ".wal"
		} else if *indexPath != "" {
			walDir = *indexPath + ".wal"
		}
	}
	if walDir != "" {
		l, err := wal.Open(walDir, wal.Options{Metrics: reg})
		if err != nil {
			log.Fatal("gksd: wal: ", err)
		}
		walLog = l
		base := loadSys
		loadSys = func() (gks.Searcher, error) {
			sys, err := base()
			if err != nil {
				return nil, err
			}
			recovered, n, err := gks.ReplayWAL(sys, walLog)
			if err != nil {
				return nil, err
			}
			reg.ObserveWALReplay(n)
			if n > 0 {
				logger.Printf("wal: replayed %d surviving record(s) from %s", n, walDir)
				reg.SetDocs(recovered.Stats().Documents)
			}
			return recovered, nil
		}
	}

	// Follower bootstrap: a first boot (no local snapshot) or a boot that
	// found an interrupted snapshot install discards local state, fetches
	// the leader's current snapshot and resets the local log — after
	// which the normal load path (snapshot + log replay) runs unchanged.
	if *follow != "" {
		if walLog == nil {
			log.Fatal("gksd: -follow requires a WAL")
		}
		needJoin := server.InstallPending(walDir)
		if !needJoin {
			if _, err := os.Stat(*indexPath); err != nil {
				needJoin = true
			}
		}
		if needJoin {
			logger.Printf("replica: joining cluster from %s", *follow)
			if err := server.JoinCluster(*follow, nil, *indexPath, walLog, logger); err != nil {
				log.Fatal("gksd: ", err)
			}
		}
	} else if walLog != nil && server.InstallPending(walDir) {
		// An interrupted snapshot install means the snapshot and the log
		// no longer agree; only a re-join can fix that, and this boot
		// was not asked to follow anyone.
		log.Fatalf("gksd: %s holds an interrupted snapshot install marker; boot with -follow to re-join, or remove the WAL directory to start from the snapshot alone", walDir)
	}

	sys, err := loadSys()
	if err != nil {
		log.Fatal("gksd: ", err)
	}

	api := server.NewWithCache(sys, *cacheSize)
	reg.SetCacheStats(api.CacheStats)
	api.SetSearchObserver(reg)
	reg.SetSnapshotGeneration(api.Generation())
	reloader := server.NewReloader(api, loadSys, reg, logger)

	// persist writes each live mutation durably to the boot source before
	// it serves; nil with -files, where mutations are in-memory by design
	// (a reload re-parses the original inputs).
	var persist func(gks.Searcher) error
	switch {
	case *files != "":
		// boot source is raw XML: nothing durable to write back
	case *manifestPath != "":
		persist = func(sys gks.Searcher) error {
			set, ok := sys.(*gks.ShardedSystem)
			if !ok {
				return fmt.Errorf("cannot persist %T to shard manifest %s", sys, *manifestPath)
			}
			return set.SaveManifest(*manifestPath)
		}
	case *indexPath != "":
		// Preserve the boot file's physical format: a daemon booted from a
		// GKS4 segment checkpoints GKS4 segments back, so the next boot (or
		// an offline gks command) sees the same layout it started with.
		bootIsSegment := segment.IsSegmentFile(*indexPath)
		persist = func(sys gks.Searcher) error {
			single, ok := sys.(*gks.System)
			if !ok {
				return fmt.Errorf("cannot persist %T to single-index snapshot %s", sys, *indexPath)
			}
			if bootIsSegment {
				return single.SaveSegmentFile(*indexPath)
			}
			return single.SaveIndexFile(*indexPath)
		}
	}
	ingester := server.NewIngester(reloader, persist, reg, logger)

	// With a WAL, mutations acknowledge on log durability and the
	// checkpointer owns the snapshot write: every -checkpoint-every durable
	// mutations (and once at shutdown) it persists the serving state and
	// truncates the log segments that snapshot supersedes.
	ckptDone := make(chan struct{})
	ckptStop := func() {}
	var ckpt *server.Checkpointer
	if walLog != nil && persist != nil {
		ckpt = server.NewCheckpointer(reloader, walLog, persist, *checkpointEvery, reg, logger)
		ckpt.EnableRepack(*repackThreshold)
		ingester.EnableWAL(walLog, ckpt.Notify)
		ckptCtx, cancel := context.WithCancel(context.Background())
		ckptStop = cancel
		go func() {
			defer close(ckptDone)
			ckpt.Run(ckptCtx)
		}()
		logger.Printf("wal: logging mutations to %s (checkpoint every %d)", walDir, *checkpointEvery)
	} else {
		close(ckptDone)
	}

	if *schemaCats {
		// Ingested documents are categorized by the schema inferred at
		// build time, not re-inferred per mutation (re-applying would race
		// in-flight searches on the shared node table). POST /admin/reload
		// re-runs -schema categorization over the full corpus.
		logger.Print("note: -schema categorization is not re-applied on /admin/docs mutations; trigger /admin/reload to re-categorize")
	}

	// Replication roles. A follower tails the leader's stream through a
	// ReplicaApplier (the same two-phase commit path as local ingestion)
	// and rejects local mutations; any single-index WAL boot that is not
	// following acts as a leader and exposes the snapshot + stream
	// endpoints — a standalone daemon is just a leader nobody follows.
	role := "single"
	var follower *replica.Follower
	var leader *replica.Leader
	followDone := make(chan struct{})
	followStop := func() {}
	switch {
	case *follow != "":
		role = "follower"
		onDurable := func() {}
		if ckpt != nil {
			onDurable = ckpt.Notify
		}
		applier := server.NewReplicaApplier(reloader, walLog, *indexPath, reg, logger, onDurable)
		var err error
		follower, err = replica.NewFollower(replica.Config{
			Leader:  *follow,
			Applier: applier,
			Metrics: reg,
			Logger:  logger,
			MaxLag:  *replicaMaxLag,
		})
		if err != nil {
			log.Fatal("gksd: ", err)
		}
		reg.SetReplicaRole(role)
		followCtx, cancel := context.WithCancel(context.Background())
		followStop = cancel
		go func() {
			defer close(followDone)
			if err := follower.Run(followCtx); err != nil && followCtx.Err() == nil {
				// A failed apply means the local mirror has diverged from
				// the leader; serving on would return wrong answers.
				logger.Printf("replica: follower stopped: %v", err)
				os.Exit(1)
			}
		}()
		logger.Printf("replica: following %s (max lag %d records)", *follow, *replicaMaxLag)
	case walLog != nil && *indexPath != "":
		role = "leader"
		leader = &replica.Leader{
			Log:      walLog,
			Snapshot: reloader.ReplicaSource(walLog),
			Metrics:  reg,
			Logger:   logger,
		}
		reg.SetReplicaRole(role)
		close(followDone)
	default:
		close(followDone)
	}

	mw := []server.Middleware{server.WithMetrics(reg)}
	if !*quiet {
		mw = append(mw, server.WithAccessLog(logger))
	}
	mw = append(mw,
		server.WithRecovery(reg, logger),
		server.WithLimit(*maxInflight, reg),
		server.WithTimeout(*timeout),
	)

	// /metrics, /healthz and /admin/reload bypass the limiter and timeout
	// so observability and operations stay reachable even when the API is
	// saturated; reload work happens off the request path regardless.
	root := http.NewServeMux()
	root.Handle("/", server.Chain(api, mw...))
	root.Handle("/metrics", server.Chain(reg.Handler(), server.WithRecovery(reg, logger)))
	root.Handle("/admin/reload", server.Chain(reloader.AdminHandler(), server.WithRecovery(reg, logger)))
	// Followers are read replicas: the single writer is the leader, and a
	// local mutation would fork the mirror.
	docsHandler := http.Handler(ingester.Handler())
	if follower != nil {
		leaderURL := *follow
		docsHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusForbidden)
			fmt.Fprintf(w, "{\"error\":\"this node is a read replica; send mutations to the leader\",\"leader\":%q}\n", leaderURL)
		})
	}
	root.Handle("/admin/docs", server.Chain(docsHandler, server.WithRecovery(reg, logger)))
	root.Handle("/admin/docs/", server.Chain(docsHandler, server.WithRecovery(reg, logger)))
	if leader != nil {
		// Recovery only: the stream is long-lived by design, so the
		// limiter and per-request timeout must not touch it.
		root.Handle("/replica/snapshot", server.Chain(leader.SnapshotHandler(), server.WithRecovery(reg, logger)))
		root.Handle("/replica/stream", server.Chain(leader.StreamHandler(), server.WithRecovery(reg, logger)))
	}
	health := &server.Health{Handler: api, Role: role, WAL: walLog, Checkpoint: ckpt}
	if follower != nil {
		health.Ready = follower.Ready
		health.Replica = func() any { return follower.Status() }
	}
	root.Handle("/healthz", health)

	// SIGHUP triggers the same reload as POST /admin/reload — the
	// traditional "re-read your config" signal, here "re-read your index".
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if _, err := reloader.Reload(); err != nil {
				logger.Printf("SIGHUP reload: %v", err)
			}
		}
	}()

	st := sys.Stats()
	log.Printf("serving %d document(s), %d elements, %d entity nodes on %s (timeout=%s max-inflight=%d cache=%d)",
		st.Documents, st.ElementNodes, st.EntityNodes, *addr, *timeout, *maxInflight, *cacheSize)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := server.NewHTTPServer(*addr, root, *timeout)
	if err := server.Serve(ctx, srv, *grace); err != nil {
		log.Fatal("gksd: ", err)
	}
	// Stop tailing the leader before the final checkpoint so the
	// checkpointed snapshot covers every applied record.
	followStop()
	<-followDone
	if walLog != nil {
		// In-flight mutations have drained; the final checkpoint folds the
		// log into the snapshot so the next boot replays (near) nothing.
		ckptStop()
		<-ckptDone
		if err := walLog.Close(); err != nil {
			logger.Printf("wal: close: %v", err)
		}
	}
	log.Print("gksd: drained in-flight requests, shut down cleanly")
}

// shardedFromFiles parses the XML inputs and builds a sharded system. With
// lenient set, files that fail to open or parse are skipped (logged) and
// only an empty surviving set is an error — mirroring IndexFilesLenient.
func shardedFromFiles(opts gks.ShardOptions, paths []string, lenient bool) (*gks.ShardedSystem, error) {
	docs := make([]*gks.Document, 0, len(paths))
	for _, p := range paths {
		d, err := gks.ParseDocumentFile(p)
		if err != nil {
			if lenient {
				log.Printf("gksd: lenient: skipping %s: %v", p, err)
				continue
			}
			return nil, err
		}
		docs = append(docs, d)
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("no indexable files: all %d input file(s) failed to parse", len(paths))
	}
	return gks.IndexDocumentsShardedOpts(opts, docs...)
}
