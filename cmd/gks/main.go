// Command gks is the interactive front end of the Generic Keyword Search
// system: it indexes XML repositories, runs GKS searches with a tunable
// threshold s, reports the LCA baselines and discovers Deeper Analytical
// Insights.
//
// Usage:
//
//	gks index   -out repo.gksidx [-format gks3|gks4] file.xml [file.xml ...]
//	gks add     -index repo.gksidx file.xml [file.xml ...]
//	gks remove  -index repo.gksidx docname [docname ...]
//	gks search  [-index repo.gksidx | -files a.xml,b.xml] [-s N] [-top K]
//	            [-di M] [-baselines] [-chunks] "query terms"
//	gks stats   -index repo.gksidx
//	gks convert -in repo.gksidx -out repo.gks4 -format gks4
//
// -format gks4 writes the block-compressed GKS4 segment layout: postings
// live in fixed-size compressed blocks fetched lazily at query time behind
// a bounded block cache, so serving memory stays far below the index size.
// convert rewrites an existing snapshot between the formats. add and remove
// preserve the format of the file they mutate.
//
// add and remove mutate a saved index (or shard manifest) in place without
// a rebuild: add upserts each document by name (replacing a same-named one)
// and remove deletes by document name; the updated snapshot is written back
// crash-safely before the command reports success.
//
// When a gksd write-ahead log sits next to the index (the daemon's default
// is the boot path plus ".wal"), add, remove, search and stats fold the
// log's surviving records into the loaded snapshot first, so offline
// commands see every mutation the daemon acknowledged. add and remove then
// truncate the log after their save — the fresh snapshot supersedes it.
// Use -wal-dir to point at a log elsewhere, or -wal-dir=off to ignore one.
//
// Query strings support double-quoted phrases, e.g.
//
//	gks search -files dblp.xml -s 2 '"Peter Buneman" "Wenfei Fan" 2001'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	gks "repro"
	"repro/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "add":
		cmdAdd(os.Args[2:])
	case "remove":
		cmdRemove(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "repl":
		cmdRepl(os.Args[2:])
	case "xpath":
		cmdXPath(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gks {index|add|remove|search|stats|convert|repl|xpath} [flags] ...")
	fmt.Fprintln(os.Stderr, "  gks index   -out repo.gksidx [-format gks3|gks4] [-stream] [-lenient] [-shards N] file.xml ...")
	fmt.Fprintln(os.Stderr, "  gks add     -index repo.gksidx file.xml ...   (add or replace documents in place)")
	fmt.Fprintln(os.Stderr, "  gks remove  -index repo.gksidx docname ...    (delete documents in place)")
	fmt.Fprintln(os.Stderr, `  gks search  [-index repo.gksidx | -files a.xml,b.xml] [-s N] [-top K] [-di M] [-baselines] [-chunks] "query"`)
	fmt.Fprintln(os.Stderr, "  gks stats   -index repo.gksidx")
	fmt.Fprintln(os.Stderr, "  gks convert -in repo.gksidx -out repo.gks4 -format gks4   (rewrite between snapshot formats)")
	fmt.Fprintln(os.Stderr, "  gks repl    [-index repo.gksidx | -files a.xml,b.xml]")
	fmt.Fprintln(os.Stderr, `  gks xpath   -files a.xml,b.xml "//Course[Name=\"AI\"]/Students/Student"`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gks:", err)
	os.Exit(1)
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	out := fs.String("out", "repo.gksidx", "output index file")
	stream := fs.Bool("stream", false, "single-pass streaming build (O(depth) memory, for large files)")
	lenient := fs.Bool("lenient", false, "skip unparsable XML files (reported on stderr) instead of failing the batch")
	shards := fs.Int("shards", 1, "partition the documents into N index shards built in parallel; writes a manifest plus one snapshot per shard")
	byTokens := fs.Bool("balance-tokens", false, "with -shards: balance shards by token count instead of hashing document names")
	format := fs.String("format", "gks3", "snapshot format: gks3 (in-memory snapshot) or gks4 (block-compressed segment, lazily loaded)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("no input files"))
	}
	if *format != "gks3" && *format != "gks4" {
		fatal(fmt.Errorf("unknown -format %q (want gks3 or gks4)", *format))
	}
	if *shards > 1 {
		if *format == "gks4" {
			fatal(fmt.Errorf("-format=gks4 applies to single-index builds; shard manifests reference gks3 snapshots"))
		}
		if *stream {
			fatal(fmt.Errorf("-shards and -stream are mutually exclusive"))
		}
		cmdIndexSharded(*out, *shards, *byTokens, *lenient, fs.Args())
		return
	}
	var sys *gks.System
	var err error
	switch {
	case *lenient:
		var skipped []gks.FileError
		sys, skipped, err = gks.IndexFilesLenient(fs.Args()...)
		for _, fe := range skipped {
			fmt.Fprintf(os.Stderr, "gks: skipping %s: %v\n", fe.Path, fe.Err)
		}
	case *stream:
		sys, err = gks.IndexFilesStreaming(fs.Args()...)
	default:
		sys, err = gks.IndexFiles(fs.Args()...)
	}
	if err != nil {
		fatal(err)
	}
	if *format == "gks4" {
		err = sys.SaveSegmentFile(*out)
	} else {
		err = sys.SaveIndexFile(*out)
	}
	if err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("indexed %d document(s): %d elements, %d entity nodes, %d distinct keywords -> %s\n",
		st.Documents, st.ElementNodes, st.EntityNodes, st.DistinctKeywords, *out)
}

// cmdConvert rewrites a saved single-index snapshot between the gks3 and
// gks4 physical layouts. The logical index is unchanged: searches over the
// converted file return byte-identical responses.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "source index file (gks3 snapshot or gks4 segment)")
	out := fs.String("out", "", "destination index file")
	format := fs.String("format", "gks4", "target format: gks3 or gks4")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("gks convert requires -in and -out"))
	}
	if *format != "gks3" && *format != "gks4" {
		fatal(fmt.Errorf("unknown -format %q (want gks3 or gks4)", *format))
	}
	if isManifest(*in) {
		fatal(fmt.Errorf("%s is a shard manifest; convert its per-shard snapshots individually", *in))
	}
	sys, err := gks.LoadIndexFile(*in)
	if err != nil {
		fatal(err)
	}
	if *format == "gks4" {
		err = sys.SaveSegmentFile(*out)
	} else {
		err = sys.SaveIndexFile(*out)
	}
	if err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("converted %s -> %s (%s): %d document(s), %d distinct keywords\n",
		*in, *out, *format, st.Documents, st.DistinctKeywords)
}

// cmdIndexSharded builds an n-shard index set and writes it as a GKSM1
// manifest plus one snapshot file per shard next to it.
func cmdIndexSharded(out string, n int, byTokens, lenient bool, paths []string) {
	docs := make([]*gks.Document, 0, len(paths))
	for _, p := range paths {
		d, err := gks.ParseDocumentFile(p)
		if err != nil {
			if lenient {
				fmt.Fprintf(os.Stderr, "gks: skipping %s: %v\n", p, err)
				continue
			}
			fatal(err)
		}
		docs = append(docs, d)
	}
	if len(docs) == 0 {
		fatal(fmt.Errorf("no indexable files: all %d input file(s) failed to parse", len(paths)))
	}
	opts := gks.DefaultShardOptions(n)
	opts.ByTokens = byTokens
	set, err := gks.IndexDocumentsShardedOpts(opts, docs...)
	if err != nil {
		fatal(err)
	}
	if err := set.SaveManifest(out); err != nil {
		fatal(err)
	}
	st := set.Stats()
	fmt.Printf("indexed %d document(s) into %d shard(s): %d elements, %d entity nodes, %d distinct keywords -> %s\n",
		st.Documents, set.NumShards(), st.ElementNodes, st.EntityNodes, st.DistinctKeywords, out)
}

// cmdAdd upserts XML files into a saved index: each document is added by
// name, replacing a live same-named one, and the mutated snapshot (single
// index or shard manifest — sniffed from the file) is written back
// crash-safely. All documents are applied before the single save, so a
// multi-file add is atomic on disk.
func cmdAdd(args []string) {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	indexPath := fs.String("index", "", "saved index file or shard manifest to mutate in place")
	walDir := fs.String("wal-dir", "", "gksd write-ahead log to fold in and truncate (default: -index path + \".wal\" when present; \"off\" ignores it)")
	fs.Parse(args)
	if *indexPath == "" {
		fatal(fmt.Errorf("gks add requires -index"))
	}
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("no input files"))
	}
	sys, err := loadSystem(*indexPath, "")
	if err != nil {
		fatal(err)
	}
	sys, l, err := foldWALTail(sys, *indexPath, *walDir)
	if err != nil {
		fatal(err)
	}
	for _, p := range fs.Args() {
		doc, err := gks.ParseDocumentFile(p)
		if err != nil {
			fatal(err)
		}
		next, replaced, err := gks.Upsert(sys, doc)
		if err != nil {
			fatal(err)
		}
		sys = next
		verb := "added"
		if replaced {
			verb = "replaced"
		}
		fmt.Printf("%s %q\n", verb, doc.Name)
	}
	saveSystem(sys, *indexPath)
	truncateWAL(l)
}

// cmdRemove deletes documents by name from a saved index and writes the
// mutated snapshot back. Deleting every document is rejected — an index
// always holds at least one.
func cmdRemove(args []string) {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	indexPath := fs.String("index", "", "saved index file or shard manifest to mutate in place")
	walDir := fs.String("wal-dir", "", "gksd write-ahead log to fold in and truncate (default: -index path + \".wal\" when present; \"off\" ignores it)")
	fs.Parse(args)
	if *indexPath == "" {
		fatal(fmt.Errorf("gks remove requires -index"))
	}
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("no document names"))
	}
	sys, err := loadSystem(*indexPath, "")
	if err != nil {
		fatal(err)
	}
	sys, l, err := foldWALTail(sys, *indexPath, *walDir)
	if err != nil {
		fatal(err)
	}
	for _, name := range fs.Args() {
		next, err := gks.Remove(sys, name)
		if err != nil {
			fatal(err)
		}
		sys = next
		fmt.Printf("removed %q\n", name)
	}
	saveSystem(sys, *indexPath)
	truncateWAL(l)
}

// saveSystem persists a mutated system back to the path it was loaded
// from, dispatching on its physical layout. The on-disk format is
// preserved: mutating a GKS4 segment writes a GKS4 segment back.
func saveSystem(sys gks.Searcher, path string) {
	var err error
	switch v := sys.(type) {
	case *gks.System:
		if isSegment(path) {
			err = v.SaveSegmentFile(path)
		} else {
			err = v.SaveIndexFile(path)
		}
	case *gks.ShardedSystem:
		err = v.SaveManifest(path)
	default:
		err = fmt.Errorf("cannot persist %T", sys)
	}
	if err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("index now holds %d document(s): %d elements, %d distinct keywords -> %s\n",
		st.Documents, st.ElementNodes, st.DistinctKeywords, path)
}

func loadSystem(indexPath, files string) (gks.Searcher, error) {
	return loadSystemLenient(indexPath, files, false)
}

func loadSystemLenient(indexPath, files string, lenient bool) (gks.Searcher, error) {
	switch {
	case files != "":
		paths := strings.Split(files, ",")
		if lenient {
			sys, skipped, err := gks.IndexFilesLenient(paths...)
			for _, fe := range skipped {
				fmt.Fprintf(os.Stderr, "gks: skipping %s: %v\n", fe.Path, fe.Err)
			}
			return sys, err
		}
		return gks.IndexFiles(paths...)
	case indexPath != "":
		if isManifest(indexPath) {
			return gks.LoadShardSet(indexPath)
		}
		return gks.LoadIndexFile(indexPath)
	}
	return nil, fmt.Errorf("provide -index or -files")
}

// foldWALTail folds a gksd write-ahead log's surviving records into a
// freshly loaded system, so offline commands operate on everything the
// daemon acknowledged — not just the last checkpoint. walDir "" auto-
// detects the daemon's default location (indexPath + ".wal") and is a
// silent no-op when no log exists there; "off" skips explicitly. The
// returned log is non-nil when one was folded in: mutating commands
// truncate and close it after their save supersedes it, read-only
// commands just close it.
func foldWALTail(sys gks.Searcher, indexPath, walDir string) (gks.Searcher, *wal.Log, error) {
	switch {
	case indexPath == "" || walDir == "off":
		return sys, nil, nil
	case walDir == "":
		walDir = indexPath + ".wal"
		if fi, err := os.Stat(walDir); err != nil || !fi.IsDir() {
			return sys, nil, nil
		}
	}
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("wal %s: %w", walDir, err)
	}
	recovered, n, err := gks.ReplayWAL(sys, l)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "gks: replayed %d write-ahead-log record(s) from %s\n", n, walDir)
	}
	return recovered, l, nil
}

// truncateWAL drops every log record after a successful save: the snapshot
// just written contains them all. Failure is a warning, not an error — the
// log is merely redundant now, and replaying it again is idempotent.
func truncateWAL(l *wal.Log) {
	if l == nil {
		return
	}
	if _, err := l.TruncateThrough(l.LastLSN()); err != nil {
		fmt.Fprintf(os.Stderr, "gks: warning: truncating superseded write-ahead log: %v\n", err)
	}
	l.Close()
}

// isManifest sniffs the file's magic bytes so -index transparently accepts
// both single-index snapshots and shard-set manifests.
func isManifest(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [5]byte
	if _, err := f.Read(magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "GKSM1"
}

// isSegment sniffs for the GKS4 segment magic so mutating commands can
// write back the same physical format they loaded.
func isSegment(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "GKS4"
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	indexPath := fs.String("index", "", "saved index file")
	files := fs.String("files", "", "comma-separated XML files to index on the fly")
	sThresh := fs.Int("s", 1, "minimum number of query keywords per result subtree")
	top := fs.Int("top", 10, "number of results to print")
	diM := fs.Int("di", 3, "number of deeper analytical insights to print (0 to disable)")
	baselines := fs.Bool("baselines", false, "also print SLCA/ELCA baseline answers")
	chunks := fs.Bool("chunks", false, "print each result's XML chunk (requires -files)")
	explain := fs.Bool("explain", false, "print pipeline diagnostics")
	snippets := fs.Bool("snippets", false, "print highlighted snippets (requires -files)")
	pruned := fs.Bool("pruned", false, "print MaxMatch-style pruned chunks (requires -files)")
	lenient := fs.Bool("lenient", false, "with -files: skip unparsable XML files instead of failing")
	walDir := fs.String("wal-dir", "", "gksd write-ahead log to fold in before searching (default: -index path + \".wal\" when present; \"off\" ignores it)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("no query"))
	}
	sys, err := loadSystemLenient(*indexPath, *files, *lenient)
	if err != nil {
		fatal(err)
	}
	sys, l, err := foldWALTail(sys, *indexPath, *walDir)
	if err != nil {
		fatal(err)
	}
	if l != nil {
		l.Close() // read-only: the log stays for the daemon's checkpointer
	}
	// Snippets, pruned chunks and full chunks read the parsed document
	// trees, which only a single-index System built from -files retains.
	docSys, _ := sys.(*gks.System)
	if docSys == nil && (*snippets || *pruned || *chunks) {
		fmt.Fprintln(os.Stderr, "gks: -snippets/-pruned/-chunks need a single-index system built with -files; skipping")
		*snippets, *pruned, *chunks = false, false, false
	}
	queryStr := strings.Join(fs.Args(), " ")
	var resp *gks.Response
	if *explain {
		ex, err := sys.Explain(queryStr, *sThresh)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ex.String())
		resp = ex.Response
	} else {
		var err error
		resp, err = sys.Search(queryStr, *sThresh)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("query %s (|Q|=%d, s=%d): %d result(s), |S_L|=%d\n",
		resp.Query, resp.Query.Len(), resp.S, len(resp.Results), resp.SLSize)
	for _, kw := range resp.Query.Keywords {
		if len(kw.Tokens) == 1 && !sys.HasMatches(kw.Raw) {
			if sug := sys.Suggest(kw.Raw, 2, 1); len(sug) > 0 {
				fmt.Printf("  (no matches for %q — did you mean %q?)\n", kw.Raw, sug[0].Keyword)
			}
		}
	}
	for i, r := range resp.Results {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(resp.Results)-*top)
			break
		}
		kind := "LCP"
		if r.IsEntity {
			kind = "LCE"
		}
		fmt.Printf("%3d. <%s> %s  rank=%.3f  keywords=%d (%s)  [%s]\n",
			i+1, r.Label, r.ID, r.Rank, r.KeywordCount,
			strings.Join(resp.KeywordsOf(r), ", "), kind)
		if *snippets {
			lines, err := docSys.Snippet(resp, r, 4)
			if err != nil {
				fmt.Printf("     (snippet unavailable: %v)\n", err)
			}
			for _, l := range lines {
				fmt.Printf("     %s\n", l)
			}
		}
		if *pruned {
			chunk, err := docSys.PrunedChunk(resp, r)
			if err != nil {
				fmt.Printf("     (pruned chunk unavailable: %v)\n", err)
			} else {
				for _, line := range strings.Split(strings.TrimRight(chunk, "\n"), "\n") {
					fmt.Printf("     %s\n", line)
				}
			}
		}
		if *chunks {
			chunk, err := docSys.Chunk(r)
			if err != nil {
				fmt.Printf("     (chunk unavailable: %v)\n", err)
				continue
			}
			for _, line := range strings.Split(strings.TrimRight(chunk, "\n"), "\n") {
				fmt.Printf("     %s\n", line)
			}
		}
	}
	if *diM > 0 {
		fmt.Println("deeper analytical insights:")
		for _, in := range sys.Insights(resp, *diM) {
			fmt.Printf("  %s  (weight %.3f over %d node(s))\n", in, in.Weight, in.Count)
		}
		if refs := sys.Refinements(resp, 3); len(refs) > 0 {
			parts := make([]string, len(refs))
			for i, q := range refs {
				parts[i] = "{" + q.String() + "}"
			}
			fmt.Printf("refinement suggestions: %s\n", strings.Join(parts, ", "))
		}
	}
	if *baselines {
		q := gks.ParseQuery(queryStr)
		fmt.Printf("SLCA baseline: %v\n", orNull(sys.SLCA(q)))
		fmt.Printf("ELCA baseline: %v\n", orNull(sys.ELCA(q)))
	}
}

func orNull(v []string) interface{} {
	if len(v) == 0 {
		return "NULL"
	}
	return v
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "saved index file")
	files := fs.String("files", "", "comma-separated XML files to index on the fly")
	top := fs.Int("top", 0, "also print the N most frequent keywords and labels")
	walDir := fs.String("wal-dir", "", "gksd write-ahead log to fold in before reporting (default: -index path + \".wal\" when present; \"off\" ignores it)")
	fs.Parse(args)
	// Fast path: plain stats over a single-index file with no WAL tail to
	// fold in are answered from the snapshot's framing alone — the GKS4
	// footer or a streaming skim of the GKS3 payload — without decoding a
	// single posting list or resident node table.
	if *top == 0 && *files == "" && *indexPath != "" && !isManifest(*indexPath) && !hasWALTail(*indexPath, *walDir) {
		st, err := gks.ReadIndexStats(*indexPath)
		if err != nil {
			fatal(err)
		}
		printStats(st)
		return
	}
	sys, err := loadSystem(*indexPath, *files)
	if err != nil {
		fatal(err)
	}
	sys, l, err := foldWALTail(sys, *indexPath, *walDir)
	if err != nil {
		fatal(err)
	}
	if l != nil {
		l.Close() // read-only: the log stays for the daemon's checkpointer
	}
	printStats(sys.Stats())
	if *top > 0 {
		single, ok := sys.(*gks.System)
		if !ok {
			// Histograms walk one node table; a sharded set has several.
			fmt.Fprintln(os.Stderr, "gks: -top breakdowns are unavailable for sharded indexes")
			return
		}
		fmt.Printf("top %d keywords:\n", *top)
		for _, kf := range single.TopKeywords(*top) {
			fmt.Printf("  %-24s %d\n", kf.Keyword, kf.Count)
		}
		fmt.Printf("top %d labels (count AN/RN/EN/CN):\n", *top)
		for i, lc := range single.LabelHistogram() {
			if i >= *top {
				break
			}
			fmt.Printf("  %-24s %d  %d/%d/%d/%d\n", lc.Label, lc.Count,
				lc.PerCategory[0], lc.PerCategory[1], lc.PerCategory[2], lc.PerCategory[3])
		}
		fmt.Printf("elements per depth: %v\n", single.DepthHistogram())
	}
}

func printStats(st gks.IndexStats) {
	fmt.Printf("documents:          %d\n", st.Documents)
	fmt.Printf("element nodes:      %d\n", st.ElementNodes)
	fmt.Printf("text nodes:         %d\n", st.TextNodes)
	fmt.Printf("attribute nodes:    %d\n", st.AttributeNodes)
	fmt.Printf("repeating nodes:    %d\n", st.RepeatingNodes)
	fmt.Printf("entity nodes:       %d\n", st.EntityNodes)
	fmt.Printf("connecting nodes:   %d\n", st.ConnectingNodes)
	fmt.Printf("distinct keywords:  %d\n", st.DistinctKeywords)
	fmt.Printf("posting entries:    %d\n", st.PostingEntries)
	fmt.Printf("max depth:          %d\n", st.MaxDepth)
}

// hasWALTail reports whether cmdStats must fold a write-ahead log before
// reporting — mirroring foldWALTail's detection rules — which forces the
// full snapshot load.
func hasWALTail(indexPath, walDir string) bool {
	switch {
	case walDir == "off":
		return false
	case walDir == "":
		fi, err := os.Stat(indexPath + ".wal")
		return err == nil && fi.IsDir()
	}
	return true
}

func cmdXPath(args []string) {
	fs := flag.NewFlagSet("xpath", flag.ExitOnError)
	files := fs.String("files", "", "comma-separated XML files")
	values := fs.Bool("values", false, "print node values instead of Dewey IDs")
	fs.Parse(args)
	if fs.NArg() == 0 || *files == "" {
		fatal(fmt.Errorf("usage: gks xpath -files a.xml \"//expr\""))
	}
	sys, err := loadSystem("", *files)
	if err != nil {
		fatal(err)
	}
	// loadSystem with -files always builds a single-index System.
	nodes, err := sys.(*gks.System).XPath(strings.Join(fs.Args(), " "))
	if err != nil {
		fatal(err)
	}
	for _, n := range nodes {
		if *values {
			fmt.Printf("%s\t%s\n", n.ID, n.Value())
		} else {
			fmt.Printf("%s\t<%s>\n", n.ID, n.Label)
		}
	}
	fmt.Fprintf(os.Stderr, "%d node(s)\n", len(nodes))
}
