package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI is tested end-to-end against a compiled binary: TestMain builds
// cmd/gks once into a temp dir, and each test drives a subcommand the way
// a user would.

var (
	gksBinary string
	sampleXML string
)

const universityXML = `<?xml version="1.0"?>
<Dept>
  <Dept_Name>CS</Dept_Name>
  <Area>
    <Name>Databases</Name>
    <Courses>
      <Course>
        <Name>Data Mining</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Mike</Student>
        </Students>
      </Course>
      <Course>
        <Name>Algorithms</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Julie</Student>
        </Students>
      </Course>
    </Courses>
  </Area>
</Dept>`

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gkscli")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	gksBinary = filepath.Join(dir, "gks")
	build := exec.Command("go", "build", "-o", gksBinary, ".")
	if out, err := build.CombinedOutput(); err != nil {
		panic(string(out))
	}
	sampleXML = filepath.Join(dir, "university.xml")
	if err := os.WriteFile(sampleXML, []byte(universityXML), 0o644); err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// run executes the binary and returns combined output and the exit error.
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(gksBinary, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestCLIIndexAndSearch(t *testing.T) {
	idx := filepath.Join(t.TempDir(), "u.gksidx")
	out, err := run(t, "index", "-out", idx, sampleXML)
	if err != nil {
		t.Fatalf("index: %v\n%s", err, out)
	}
	if !strings.Contains(out, "entity nodes") {
		t.Errorf("index output: %s", out)
	}
	out, err = run(t, "search", "-index", idx, "-s", "2", "karen mike")
	if err != nil {
		t.Fatalf("search: %v\n%s", err, out)
	}
	if !strings.Contains(out, "<Course>") || !strings.Contains(out, "1 result(s)") {
		t.Errorf("search output: %s", out)
	}
}

func TestCLIStreamingIndex(t *testing.T) {
	idx := filepath.Join(t.TempDir(), "s.gksidx")
	out, err := run(t, "index", "-stream", "-out", idx, sampleXML)
	if err != nil {
		t.Fatalf("index -stream: %v\n%s", err, out)
	}
	out, err = run(t, "search", "-index", idx, "karen")
	if err != nil || !strings.Contains(out, "result(s)") {
		t.Fatalf("search on streamed index: %v\n%s", err, out)
	}
}

func TestCLISearchWithFilesAndFeatures(t *testing.T) {
	out, err := run(t, "search", "-files", sampleXML, "-baselines", "-snippets",
		"-explain", "-di", "2", "karen mike")
	if err != nil {
		t.Fatalf("search: %v\n%s", err, out)
	}
	for _, want := range []string{"SLCA baseline", "«Karen»", "|S_L|", "insights"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCLIDidYouMean(t *testing.T) {
	out, err := run(t, "search", "-files", sampleXML, "-di", "0", "karne")
	if err != nil {
		t.Fatalf("search: %v\n%s", err, out)
	}
	if !strings.Contains(out, "did you mean") {
		t.Errorf("no did-you-mean suggestion:\n%s", out)
	}
}

func TestCLIStats(t *testing.T) {
	out, err := run(t, "stats", "-files", sampleXML, "-top", "2")
	if err != nil {
		t.Fatalf("stats: %v\n%s", err, out)
	}
	for _, want := range []string{"entity nodes", "top 2 keywords", "elements per depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXPath(t *testing.T) {
	out, err := run(t, "xpath", "-files", sampleXML, "-values",
		`//Course[Name="Data Mining"]/Students/Student`)
	if err != nil {
		t.Fatalf("xpath: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Karen") || !strings.Contains(out, "Mike") {
		t.Errorf("xpath output:\n%s", out)
	}
}

func TestCLIRepl(t *testing.T) {
	cmd := exec.Command(gksBinary, "repl", "-files", sampleXML)
	cmd.Stdin = strings.NewReader("karen mike\n:s 0\nkaren julie serena\n:stats\n:quit\n")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("repl: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"result(s) at s=2", "elements="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in repl output:\n%s", want, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if _, err := run(t, "search", "karen"); err == nil {
		t.Error("search without index/files must fail")
	}
	if _, err := run(t, "nonsense"); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if _, err := run(t, "index"); err == nil {
		t.Error("index without files must fail")
	}
}
