package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	gks "repro"
)

// cmdRepl runs an interactive query loop against an index — the closest
// analog of the paper's demonstrated prototype [20]. Commands:
//
//	<query terms>        run a GKS search
//	:s N                 set the threshold s (0 = best effort)
//	:top N               set how many results to print
//	:di N                set how many insights to print
//	:baselines on|off    toggle SLCA/ELCA output
//	:schema              apply schema-aware categorization
//	:stats               print index statistics
//	:quit                exit
func cmdRepl(args []string) {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	indexPath := fs.String("index", "", "saved index file")
	files := fs.String("files", "", "comma-separated XML files to index on the fly")
	fs.Parse(args)
	sys, err := loadSystem(*indexPath, *files)
	if err != nil {
		fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("gks repl: %d documents, %d elements, %d entity nodes. Type :help for commands.\n",
		st.Documents, st.ElementNodes, st.EntityNodes)

	sThresh, top, diM := 1, 10, 3
	baselines := false
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 64*1024), 64*1024)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q" || line == ":exit":
			return
		case line == ":help":
			fmt.Println("  <query>              search (quote phrases: \"Peter Buneman\")")
			fmt.Println("  :s N                 threshold (0 = best effort)")
			fmt.Println("  :top N / :di N       output sizes")
			fmt.Println("  :baselines on|off    SLCA/ELCA comparison")
			fmt.Println("  :schema              schema-aware categorization")
			fmt.Println("  :stats / :quit")
		case strings.HasPrefix(line, ":s "):
			if n, err := strconv.Atoi(strings.TrimSpace(line[3:])); err == nil {
				sThresh = n
				fmt.Printf("s = %d\n", sThresh)
			}
		case strings.HasPrefix(line, ":top "):
			if n, err := strconv.Atoi(strings.TrimSpace(line[5:])); err == nil && n > 0 {
				top = n
			}
		case strings.HasPrefix(line, ":di "):
			if n, err := strconv.Atoi(strings.TrimSpace(line[4:])); err == nil && n >= 0 {
				diM = n
			}
		case strings.HasPrefix(line, ":baselines"):
			baselines = strings.Contains(line, "on")
			fmt.Printf("baselines = %v\n", baselines)
		case line == ":schema":
			changed := sys.ApplySchemaCategorization()
			fmt.Printf("schema-aware categorization applied: %d node(s) changed\n", changed)
		case line == ":stats":
			st := sys.Stats()
			fmt.Printf("elements=%d AN=%d RN=%d EN=%d CN=%d keywords=%d\n",
				st.ElementNodes, st.AttributeNodes, st.RepeatingNodes,
				st.EntityNodes, st.ConnectingNodes, st.DistinctKeywords)
		case strings.HasPrefix(line, ":"):
			fmt.Println("unknown command; :help lists commands")
		default:
			runReplQuery(sys, line, sThresh, top, diM, baselines)
		}
		fmt.Print("> ")
	}
}

func runReplQuery(sys gks.Searcher, line string, sThresh, top, diM int, baselines bool) {
	var resp *gks.Response
	var err error
	if sThresh <= 0 {
		resp, err = sys.SearchBestEffort(line)
	} else {
		resp, err = sys.Search(line, sThresh)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d result(s) at s=%d, |S_L|=%d\n", len(resp.Results), resp.S, resp.SLSize)
	for i, r := range resp.Results {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(resp.Results)-top)
			break
		}
		fmt.Printf("%3d. <%s> %s rank=%.3f %v\n", i+1, r.Label, r.ID, r.Rank, resp.KeywordsOf(r))
	}
	if diM > 0 {
		for _, in := range sys.Insights(resp, diM) {
			fmt.Printf("  DI: %s\n", in)
		}
	}
	if baselines {
		q := gks.ParseQuery(line)
		fmt.Printf("  SLCA: %v  ELCA: %v\n", orNull(sys.SLCA(q)), orNull(sys.ELCA(q)))
	}
}
