// Command gksbench regenerates the tables and figures of the paper's
// evaluation (Agarwal et al., EDBT 2016, §7) over the synthetic dataset
// analogs. Each experiment prints the same rows/series the paper reports,
// alongside the paper's numbers where applicable.
//
// Usage:
//
//	gksbench [-scale N] [-exp name] [-json-dir DIR]
//
// Experiments: table1, table4, table5, table7, table8, fig8, fig9, fig10,
// fig8s, refine, feedback, hybrid, naive, schema, formats, meaning, fslca,
// recursive, shard, query, ingest, replica, segment, dag, or "all"
// (default).
//
// With -json-dir every experiment additionally writes its typed rows as
// BENCH_<name>.json into the directory — a machine-readable record of the
// run for regression tracking, alongside the human-readable tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale factor")
	exp := flag.String("exp", "all", "experiment to run (comma separated), or 'all'")
	jsonDir := flag.String("json-dir", "", "also write each experiment's rows as BENCH_<name>.json into this directory")
	flag.Parse()

	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	run := func(name string) bool { return all || wanted[name] }

	s := experiments.NewSuite(*scale)
	out := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "gksbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	// emit records an experiment's typed result as BENCH_<name>.json.
	emit := func(name string, v any) {
		if *jsonDir == "" {
			return
		}
		data, err := json.MarshalIndent(map[string]any{
			"experiment": name,
			"scale":      *scale,
			"result":     v,
		}, "", "  ")
		if err != nil {
			fail(name, err)
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fail(name, err)
		}
	}

	if run("table1") {
		rows, err := experiments.Table1()
		if err != nil {
			fail("table1", err)
		}
		fmt.Fprintln(out, "== Table 1: GKS vs ELCA vs SLCA on the Figure 1 tree ==")
		emit("table1", rows)
		experiments.PrintTable1(out, rows)
		fmt.Fprintln(out)
	}
	if run("table4") {
		rows, err := s.Table4()
		if err != nil {
			fail("table4", err)
		}
		fmt.Fprintln(out, "== Table 4: index size and preparation time ==")
		emit("table4", rows)
		experiments.PrintTable4(out, rows)
		fmt.Fprintln(out)
	}
	if run("table5") {
		rows, err := s.Table5()
		if err != nil {
			fail("table5", err)
		}
		fmt.Fprintln(out, "== Table 5: distribution of XML elements over node categories ==")
		emit("table5", rows)
		experiments.PrintTable5(out, rows)
		fmt.Fprintln(out)
	}
	if run("fig8") {
		points, err := s.Figure8()
		if err != nil {
			fail("fig8", err)
		}
		emit("fig8", points)
		experiments.PrintRTPoints(out, "== Figure 8: response time vs merged list size (n=8) ==", points)
		fmt.Fprintln(out)
	}
	if run("fig8s") {
		points, err := s.Figure8Sampled(8)
		if err != nil {
			fail("fig8s", err)
		}
		fmt.Fprintln(out, "== Figure 8 (sampled workload) ==")
		emit("fig8s", points)
		experiments.PrintFigure8Sampled(out, points)
		fmt.Fprintln(out)
	}
	if run("fig9") {
		points, err := s.Figure9()
		if err != nil {
			fail("fig9", err)
		}
		emit("fig9", points)
		experiments.PrintRTPoints(out, "== Figure 9: response time vs keywords in query (n) ==", points)
		fmt.Fprintln(out)
	}
	if run("fig10") {
		points, err := s.Figure10()
		if err != nil {
			fail("fig10", err)
		}
		fmt.Fprintln(out, "== Figure 10: scalability over replicated datasets ==")
		emit("fig10", points)
		experiments.PrintFigure10(out, points)
		fmt.Fprintln(out)
	}
	if run("table7") {
		rows, err := s.Table7()
		if err != nil {
			fail("table7", err)
		}
		fmt.Fprintln(out, "== Table 7: comparison with SLCA and rank score ==")
		emit("table7", rows)
		experiments.PrintTable7(out, rows)
		fmt.Fprintln(out)
	}
	if run("table8") {
		rows, err := s.Table8()
		if err != nil {
			fail("table8", err)
		}
		fmt.Fprintln(out, "== Table 8: DI discovered for different queries ==")
		emit("table8", rows)
		experiments.PrintTable8(out, rows)
		fmt.Fprintln(out)
	}
	if run("refine") {
		r, err := s.Refinement()
		if err != nil {
			fail("refine", err)
		}
		fmt.Fprintln(out, "== Section 7.4: DI-driven query refinement ==")
		emit("refine", r)
		experiments.PrintRefinement(out, r)
		fmt.Fprintln(out)
	}
	if run("feedback") {
		rows, err := s.Feedback()
		if err != nil {
			fail("feedback", err)
		}
		fmt.Fprintln(out, "== Section 7.5: simulated crowd feedback (GKS vs SLCA) ==")
		emit("feedback", rows)
		experiments.PrintFeedback(out, rows)
		fmt.Fprintln(out)
	}
	if run("hybrid") {
		r, err := s.Hybrid()
		if err != nil {
			fail("hybrid", err)
		}
		fmt.Fprintln(out, "== Section 7.6: hybrid queries over merged repositories ==")
		emit("hybrid", r)
		experiments.PrintHybrid(out, r)
		fmt.Fprintln(out)
	}
	if run("naive") {
		rows, err := s.NaiveAblation()
		if err != nil {
			fail("naive", err)
		}
		fmt.Fprintln(out, "== Lemma 3 ablation ==")
		emit("naive", rows)
		experiments.PrintNaiveAblation(out, rows)
		fmt.Fprintln(out)
	}
	if run("schema") {
		rows, err := s.SchemaAblation()
		if err != nil {
			fail("schema", err)
		}
		fmt.Fprintln(out, "== Schema-aware categorization ablation (§2.2 future work) ==")
		emit("schema", rows)
		experiments.PrintSchemaAblation(out, rows)
		fmt.Fprintln(out)
	}
	if run("meaning") {
		rows, err := s.Meaningfulness()
		if err != nil {
			fail("meaning", err)
		}
		fmt.Fprintln(out, "== Meaningfulness: precision/recall vs SLCA (§1.2) ==")
		emit("meaning", rows)
		experiments.PrintMeaningfulness(out, rows)
		fmt.Fprintln(out)
	}
	if run("recursive") {
		rows, err := s.RecursiveDI(3)
		if err != nil {
			fail("recursive", err)
		}
		fmt.Fprintln(out, "== Recursive DI rounds (§2.3) ==")
		emit("recursive", rows)
		experiments.PrintRecursiveDI(out, rows)
		fmt.Fprintln(out)
	}
	if run("fslca") {
		rows, err := s.FSLCA()
		if err != nil {
			fail("fslca", err)
		}
		fmt.Fprintln(out, "== FSLCA (simplified MESSIAH) comparison (§7.3) ==")
		emit("fslca", rows)
		experiments.PrintFSLCA(out, rows)
		fmt.Fprintln(out)
	}
	if run("formats") {
		rows, err := s.IndexFormats()
		if err != nil {
			fail("formats", err)
		}
		fmt.Fprintln(out, "== Index persistence format comparison ==")
		emit("formats", rows)
		experiments.PrintIndexFormats(out, rows)
		fmt.Fprintln(out)
	}
	if run("shard") {
		r, err := experiments.ShardBench(*scale, []int{2, 4, 8}, 5)
		if err != nil {
			fail("shard", err)
		}
		fmt.Fprintln(out, "== Sharded index: parallel build and scatter-gather search ==")
		emit("shard", r)
		experiments.PrintShardBench(out, r)
		fmt.Fprintln(out)
	}
	if run("ingest") {
		r, err := experiments.IngestBench(*scale, []int{1, 4, 16}, 48)
		if err != nil {
			fail("ingest", err)
		}
		fmt.Fprintln(out, "== Live ingestion: snapshot-per-mutation vs WAL group commit ==")
		emit("ingest", r)
		experiments.PrintIngestBench(out, r)
		fmt.Fprintln(out)
	}
	if run("query") {
		r, err := s.QueryBench(5)
		if err != nil {
			fail("query", err)
		}
		fmt.Fprintln(out, "== Query hot path: seed pipeline vs loser-tree merge + query arena ==")
		emit("query", r)
		experiments.PrintQueryBench(out, r)
		fmt.Fprintln(out)
	}
	if run("replica") {
		r, err := experiments.ReplicaBench(*scale, []int{1, 2, 4}, 16, 4000)
		if err != nil {
			fail("replica", err)
		}
		fmt.Fprintln(out, "== Replicated serving: read scale-out across WAL-shipped replicas ==")
		emit("replica", r)
		experiments.PrintReplicaBench(out, r)
		fmt.Fprintln(out)
	}
	if run("segment") {
		r, err := experiments.SegmentBench(*scale, 0)
		if err != nil {
			fail("segment", err)
		}
		fmt.Fprintln(out, "== Segment serving: GKS4 block-compressed segments vs GKS3 in-memory snapshots ==")
		emit("segment", r)
		experiments.PrintSegmentBench(out, r)
		fmt.Fprintln(out)
	}
	if run("dag") {
		r, err := experiments.DAGBench(*scale)
		if err != nil {
			fail("dag", err)
		}
		fmt.Fprintln(out, "== DAG-compressed node table: flat vs packed across duplicate-subtree fractions ==")
		emit("dag", r)
		experiments.PrintDAGBench(out, r)
		fmt.Fprintln(out)
	}
}
