package gks

import (
	"context"

	"repro/internal/shard"
	"repro/internal/xmltree"
)

// Searcher is the serving surface shared by a single-index System and a
// sharded index set: everything the HTTP layer needs to search, analyze
// and introspect, independent of how the index is physically laid out.
// Both *System and *ShardedSystem satisfy it.
type Searcher interface {
	Search(query string, threshold int) (*Response, error)
	SearchContext(ctx context.Context, query string, threshold int) (*Response, error)
	SearchBestEffort(query string) (*Response, error)
	SearchBestEffortContext(ctx context.Context, query string) (*Response, error)
	SearchTopK(query string, threshold, k int) (*Response, error)
	SearchTopKContext(ctx context.Context, query string, threshold, k int) (*Response, error)
	Explain(query string, threshold int) (*Explanation, error)
	ExplainContext(ctx context.Context, query string, threshold int) (*Explanation, error)
	Insights(resp *Response, m int) []Insight
	InsightsRecursive(q Query, threshold, m, rounds int) ([]InsightRound, error)
	Refinements(resp *Response, topK int) []Query
	Augmentations(q Query, insights []Insight, topK int) []Query
	SLCA(q Query) []string
	ELCA(q Query) []string
	InferResultTypes(query string, topK int) []TypeScore
	Suggest(keyword string, maxDist, topK int) []Suggestion
	HasMatches(keyword string) bool
	Schema() []SchemaEdge
	ApplySchemaCategorization() int
	Stats() IndexStats
	ValidateIndex() error
}

var (
	_ Searcher = (*System)(nil)
	_ Searcher = (*ShardedSystem)(nil)
)

// ShardedSystem is a set of independent index shards searched with a
// parallel scatter-gather whose merged responses are identical to a
// single-index System over the same documents (see internal/shard). It
// persists as a GKSM1 manifest plus one snapshot file per shard
// (SaveManifest / LoadShardSet) and satisfies Searcher, so gksd can serve
// and hot-reload it exactly like a single index.
type ShardedSystem = shard.Set

// ShardOptions configures sharded index builds.
type ShardOptions = shard.Options

// DefaultShardOptions returns the standard configuration for n shards:
// document-hash partitioning, parallel build, fail-fast searches.
func DefaultShardOptions(n int) ShardOptions { return shard.DefaultOptions(n) }

// IndexDocumentsSharded partitions the documents into n shards and builds
// them in parallel. Documents are renumbered globally, so responses carry
// the same Dewey IDs as IndexDocuments over the same slice.
func IndexDocumentsSharded(n int, docs ...*Document) (*ShardedSystem, error) {
	return IndexDocumentsShardedOpts(shard.DefaultOptions(n), docs...)
}

// IndexDocumentsShardedOpts is IndexDocumentsSharded with full control
// over partitioning, build concurrency and partial-result semantics.
func IndexDocumentsShardedOpts(opts ShardOptions, docs ...*Document) (*ShardedSystem, error) {
	return shard.Build(docs, opts)
}

// IndexFilesSharded parses the XML files and indexes them into n shards.
func IndexFilesSharded(n int, paths ...string) (*ShardedSystem, error) {
	docs := make([]*Document, 0, len(paths))
	for _, p := range paths {
		d, err := xmltree.ParseFile(p, 0)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return IndexDocumentsSharded(n, docs...)
}

// LoadShardSet restores a sharded system from a GKSM1 manifest written by
// ShardedSystem.SaveManifest. The load is all-or-nothing: a missing,
// truncated or bit-flipped shard file fails the whole set (wrapping
// ErrCorruptIndex), never yielding a mixed-generation system.
func LoadShardSet(path string) (*ShardedSystem, error) {
	return shard.LoadManifest(path)
}
