package gks

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ingestDoc(t *testing.T, name string, words ...string) *Document {
	t.Helper()
	src := "<root>"
	for _, w := range words {
		src += "<item>" + w + "</item>"
	}
	src += "</root>"
	doc, err := ParseDocumentString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// sameResults asserts two responses rank the same nodes the same way.
func sameResults(t *testing.T, label string, want, got *Response) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if w.ID.String() != g.ID.String() || w.Label != g.Label || w.Rank != g.Rank {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// TestUpsertRemoveLifecycle drives the full add → search → replace →
// search → delete cycle through the generic dispatchers on both physical
// layouts, comparing each state against a cold rebuild from the surviving
// documents.
func TestUpsertRemoveLifecycle(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(docs ...*Document) (Searcher, error)
	}{
		{"single", func(docs ...*Document) (Searcher, error) { return IndexDocuments(docs...) }},
		{"sharded", func(docs ...*Document) (Searcher, error) { return IndexDocumentsSharded(3, docs...) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := tc.build(
				ingestDoc(t, "a.xml", "apple", "pear"),
				ingestDoc(t, "b.xml", "pear", "plum"),
			)
			if err != nil {
				t.Fatal(err)
			}

			// Add a new document; its keywords become searchable.
			next, replaced, err := Upsert(sys, ingestDoc(t, "c.xml", "cherry", "pear"))
			if err != nil || replaced {
				t.Fatalf("add: replaced=%v err=%v", replaced, err)
			}
			if resp, err := next.Search("cherry", 1); err != nil || len(resp.Results) == 0 {
				t.Fatalf("added document not searchable: %d results, err=%v",
					len(resp.Results), err)
			}
			// The old system never saw it.
			if resp, _ := sys.Search("cherry", 1); len(resp.Results) != 0 {
				t.Fatal("mutation leaked into the receiver")
			}

			// Replace it; the old content disappears, the new appears.
			next2, replaced, err := Upsert(next, ingestDoc(t, "c.xml", "quince", "mango"))
			if err != nil || !replaced {
				t.Fatalf("replace: replaced=%v err=%v", replaced, err)
			}
			if resp, _ := next2.Search("cherry", 1); len(resp.Results) != 0 {
				t.Fatal("replaced content still searchable")
			}
			if resp, _ := next2.Search("quince", 1); len(resp.Results) == 0 {
				t.Fatal("replacement content not searchable")
			}

			// Delete it; state must equal a cold rebuild of the survivors
			// (the reference rebuild renumbers from zero, and so does a
			// history whose adds all landed past the original tail ids —
			// result IDs and ranks must match exactly).
			next3, err := Remove(next2, "c.xml")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := tc.build(
				ingestDoc(t, "a.xml", "apple", "pear"),
				ingestDoc(t, "b.xml", "pear", "plum"),
			)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []string{"pear", "apple plum", "quince"} {
				want, err1 := ref.Search(q, 1)
				got, err2 := next3.Search(q, 1)
				if err1 != nil || err2 != nil {
					t.Fatalf("q=%q: err1=%v err2=%v", q, err1, err2)
				}
				sameResults(t, fmt.Sprintf("%s q=%q", tc.name, q), want, got)
			}
			if want, got := ref.Stats(), next3.Stats(); want != got {
				t.Fatalf("stats %+v, want %+v", got, want)
			}

			// Error surface.
			if _, err := Remove(next3, "missing.xml"); !errors.Is(err, ErrDocNotFound) {
				t.Fatalf("remove missing: err = %v, want ErrDocNotFound", err)
			}
			if _, err := Remove(next3, "a.xml"); err != nil {
				t.Fatal(err)
			}
			one, err := Remove(next3, "b.xml")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Remove(one, "a.xml"); !errors.Is(err, ErrLastDocument) {
				t.Fatalf("remove last: err = %v, want ErrLastDocument", err)
			}
		})
	}
}

// fakeSearcher satisfies Searcher via embedding but supports no mutation.
type fakeSearcher struct{ Searcher }

func TestUpsertUnsupportedSearcher(t *testing.T) {
	doc := ingestDoc(t, "x.xml", "apple")
	if _, _, err := Upsert(&fakeSearcher{}, doc); !errors.Is(err, ErrNoLiveIngestion) {
		t.Fatalf("Upsert on unsupported type: err = %v, want ErrNoLiveIngestion", err)
	}
	if _, err := Remove(&fakeSearcher{}, "x.xml"); !errors.Is(err, ErrNoLiveIngestion) {
		t.Fatalf("Remove on unsupported type: err = %v, want ErrNoLiveIngestion", err)
	}
}

// searcherHolder lets the mutator publish successors the way a server swap
// does, so readers always load a complete, immutable system.
type searcherHolder struct{ s Searcher }

// TestConcurrentMutationUnderSearch races continuous searches against a
// stream of upserts and deletes (run with -race). Every search must answer
// without error on whatever immutable snapshot it loaded — mutations never
// touch a published system in place.
func TestConcurrentMutationUnderSearch(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(docs ...*Document) (Searcher, error)
	}{
		{"single", func(docs ...*Document) (Searcher, error) { return IndexDocuments(docs...) }},
		{"sharded", func(docs ...*Document) (Searcher, error) { return IndexDocumentsSharded(3, docs...) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := tc.build(
				ingestDoc(t, "base-0.xml", "apple", "pear"),
				ingestDoc(t, "base-1.xml", "pear", "plum"),
				ingestDoc(t, "base-2.xml", "plum", "apple"),
			)
			if err != nil {
				t.Fatal(err)
			}
			var box atomic.Pointer[searcherHolder]
			box.Store(&searcherHolder{s: sys})

			stop := make(chan struct{})
			var searches atomic.Int64
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					queries := []string{"apple", "pear plum", "apple pear plum"}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						cur := box.Load().s
						resp, err := cur.Search(queries[i%len(queries)], 1)
						if err != nil {
							t.Errorf("search failed: %v", err)
							return
						}
						// Internal consistency: results are ranked and each
						// carries a resolvable keyword set.
						for j, res := range resp.Results {
							if j > 0 && resp.Results[j-1].Rank < res.Rank {
								t.Errorf("response not rank-sorted at %d", j)
								return
							}
							if len(resp.KeywordsOf(res)) == 0 {
								t.Errorf("result %d has no keywords", j)
								return
							}
						}
						searches.Add(1)
					}
				}()
			}

			for i := 0; i < 40; i++ {
				cur := box.Load().s
				var next Searcher
				var err error
				switch i % 4 {
				case 0, 1: // add / replace
					name := fmt.Sprintf("live-%d.xml", i%8)
					next, _, err = Upsert(cur, ingestDoc(t, name, "apple", fmt.Sprintf("kw%d", i)))
				case 2:
					name := fmt.Sprintf("live-%d.xml", (i-2)%8)
					next, err = Remove(cur, name)
					if errors.Is(err, ErrDocNotFound) {
						continue
					}
				default:
					next, _, err = Upsert(cur, ingestDoc(t, "base-1.xml", "pear", "plum", "quince"))
				}
				if err != nil {
					t.Fatalf("mutation %d: %v", i, err)
				}
				box.Store(&searcherHolder{s: next})
				// Single-core runners: give readers a turn per generation so
				// searches genuinely interleave with swaps.
				runtime.Gosched()
			}
			// Keep serving until the readers have demonstrably overlapped
			// the mutation stream (bounded, so a wedged reader still fails
			// fast rather than hanging the suite).
			for deadline := time.Now().Add(5 * time.Second); searches.Load() < 20 && time.Now().Before(deadline); {
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()
			if searches.Load() == 0 {
				t.Fatal("no searches completed during the mutation storm")
			}
		})
	}
}
