package gks

import (
	"strings"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// parseDewey parses a user-facing Dewey ID string.
func parseDewey(s string) (dewey.ID, error) { return dewey.Parse(s) }

// renderChunk renders a node's subtree as indented XML without a header —
// the response presentation of the paper's prototype.
func renderChunk(n *xmltree.Node) string {
	var b strings.Builder
	writeChunk(&b, n, 0)
	return b.String()
}

func writeChunk(b *strings.Builder, n *xmltree.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Kind == xmltree.Text {
		b.WriteString(indent)
		b.WriteString(n.Text)
		b.WriteByte('\n')
		return
	}
	if n.DirectlyContainsValue() {
		b.WriteString(indent)
		b.WriteString("<" + n.Label + ">" + n.Value() + "</" + n.Label + ">\n")
		return
	}
	b.WriteString(indent)
	b.WriteString("<" + n.Label + ">\n")
	for _, c := range n.Children {
		writeChunk(b, c, depth+1)
	}
	b.WriteString(indent)
	b.WriteString("</" + n.Label + ">\n")
}
