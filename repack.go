package gks

// Background pack maintenance for live ingestion. The delta-maintaining
// pack (internal/index/packed_append.go) keeps every append O(document),
// but the table it extends drifts from canonical: delta documents pack
// against the frozen base shape table (no cross-document sharing with
// the base), and deletes accumulate as tombstoned rows. PackDebt
// measures that drift; RepackIfNeeded pays it down with one full
// deterministic repack once it crosses a threshold — the LSM-style
// amortization that bounds both memory bloat and the per-query cost of
// skipping dead ordinals.

// PackDebt reports the fraction of sys's node table that is garbage or
// past the canonical pack: tombstoned rows plus delta-appended rows,
// over total rows, in [0, 1]. Zero for sharded systems and freshly
// packed (or flat, tombstone-free) indexes.
func PackDebt(sys Searcher) float64 {
	if s, ok := sys.(*System); ok {
		return s.ix.PackDebt()
	}
	return 0
}

// RepackIfNeeded returns a system whose pack debt has been paid — one
// full deterministic repack of the surviving documents — when sys is a
// single-index system at or past threshold; otherwise it returns sys
// unchanged. The rebuilt system is a copy-on-write successor: sys keeps
// serving searches until the caller swaps the result in. A threshold
// at or below zero disables repacking (repacking on every mutation
// would reintroduce the O(N)-per-append collapse this exists to fix).
func RepackIfNeeded(sys Searcher, threshold float64) (Searcher, bool) {
	s, ok := sys.(*System)
	if !ok || threshold <= 0 {
		return sys, false
	}
	if s.ix.PackDebt() < threshold {
		return sys, false
	}
	return newSystem(s.ix.Repacked(), s.repo), true
}
